//! The tape compiler: lower a [`LoopProgram`] once into a flat,
//! preresolved [`Tape`] and execute that instead of tree-walking.
//!
//! The tree-walking interpreter in [`machine`](crate::machine) re-decides
//! everything on every instruction instance: it matches on the [`Inst`]
//! enum, evaluates [`Index`] expressions through a `match`, looks guard
//! registers up in a `BTreeMap`, and allocates a fresh input vector per
//! compute. None of that depends on data — a `LoopProgram` is straight
//! line code around one counted loop, its index expressions are affine in
//! the induction variable, and the conditional-register state (the CRED
//! guards) is a pure function of the iteration number. So the compiler
//! resolves all of it ahead of time:
//!
//! * **operand slots** — every `array[index]` reference becomes a
//!   `(base, scale, offset)` triple over one flat value buffer, where
//!   `base` is the array's precomputed dense range and the element index
//!   is `scale * i + offset` (straight-line indices fold to constants);
//! * **guard predicates** — the register bookkeeping (`setup`, `dec`,
//!   auto-decrement) is simulated at compile time and each guarded loop
//!   instruction gets a **predicate bitset** with one bit per iteration;
//!   `setup`/`dec` instructions vanish from the tape entirely. A register
//!   fault (a guard or decrement over a never-`setup` register) is
//!   detected during the simulation and recorded as a pending
//!   [`ExecError`] at its exact position, so the executor still faults at
//!   the same instruction instance the tree-walker would;
//! * **chunk boundaries** — prologue, kernel, and epilogue are ranges
//!   into one flat instruction vector, with the loop's trip count and
//!   the dynamic execute/nullify totals precomputed.
//!
//! [`Tape::execute`] is then a branch-light loop: per instance, two
//! multiply-adds for the indices, a bitset probe for the guard, and the
//! same strict memory discipline as the tree-walker (single write per
//! element, no use-before-def, range checks) over a flat written-bitset.
//! It returns the same [`ExecResult`]/[`ExecError`] values as
//! [`execute`](crate::execute) — bit-for-bit, which
//! `cross_check_executors` and the differential proptests in
//! `tests/tape_prop.rs` enforce. The tree-walker stays as the reference
//! semantics; the tape is what the verification and chaos hot paths run.
//!
//! The compiler itself is a fail-point site
//! ([`sites::VM_COMPILE`](cred_resilience::failpoint::sites::VM_COMPILE)),
//! so `credc chaos` injects faults into the lowering step too.

use crate::machine::{DiffReport, ExecError, ExecResult, Site};
use cred_codegen::{Guard, Index, Inst, LoopProgram};
use cred_dfg::{Dfg, OpKind};
use cred_resilience::failpoint;
use std::collections::BTreeMap;
use std::ops::Range;

/// A preresolved operand: the element index at induction value `i` is
/// `scale * i + offset`, and the element's dense slot in the flat value
/// buffer is `base + index - 1`.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Original array id, kept for fault reporting.
    array: u32,
    /// First slot of the array's range in the flat buffer.
    base: usize,
    /// Multiplier on the induction variable (0 for straight-line code).
    scale: i64,
    /// Constant displacement (`n`-relative indices are folded here).
    offset: i64,
}

/// When a tape instruction executes.
#[derive(Debug, Clone, Copy)]
enum Enable {
    /// Unguarded (or straight-line and guard-enabled): every time.
    Always,
    /// Guarded loop instruction: bit `t` of the window starting at this
    /// offset into [`Tape::guard_words`] is the precomputed predicate for
    /// iteration index `t`.
    Bits(usize),
    /// Guarded loop instruction whose register evolves affinely, so the
    /// enabled set is exactly the iteration interval `t0..=t1` (empty if
    /// `t0 > t1`). No bitset exists for these: the executors compare
    /// against the interval and the discipline proof sweeps it.
    Window(u64, u64),
}

/// One preresolved compute instance. `setup`/`dec` never reach the tape.
#[derive(Debug, Clone)]
struct TapeInst {
    dest: Slot,
    op: OpKind,
    /// `(start, len)` into [`Tape::srcs`].
    srcs: (u32, u32),
    enable: Enable,
}

/// A straight-line chunk: a range of tape instructions, plus an optional
/// register fault the compile-time simulation detected *after* the
/// emitted instructions (instructions past the fault can never execute
/// and are not lowered).
#[derive(Debug, Clone)]
struct Chunk {
    insts: Range<usize>,
    fault: Option<ExecError>,
}

/// The kernel chunk.
#[derive(Debug, Clone)]
struct BodyChunk {
    insts: Range<usize>,
    lo: i64,
    step: i64,
    trip: u64,
    /// Compile-detected register fault: at iteration index `.0`, after
    /// executing the first `.1` instructions of that iteration, fail with
    /// `.2`. (Register boundness only grows, so in practice `.0` is
    /// always the first iteration; the executor handles the general
    /// form.)
    fault: Option<(u64, usize, ExecError)>,
}

/// A [`LoopProgram`] lowered to schedule order with operands, guard
/// predicates, and chunk boundaries resolved. Build with [`compile`],
/// run with [`Tape::execute`].
#[derive(Debug, Clone)]
pub struct Tape {
    n: i64,
    arrays: Vec<String>,
    /// Per-array slot stride: `n` rounded up to a word multiple, so every
    /// array starts on a fresh word of the written-bitset.
    cells_per_array: usize,
    insts: Vec<TapeInst>,
    srcs: Vec<Slot>,
    /// Predicate bitset pool; [`Enable::Bits`] offsets point here.
    guard_words: Vec<u64>,
    pre: Chunk,
    body: Option<BodyChunk>,
    post: Chunk,
    /// Dynamic counts of a fault-free run, precomputed.
    executed: u64,
    nullified: u64,
    max_srcs: usize,
    /// Compile-time discipline proof succeeded: no [`ExecError`] is
    /// reachable (every write lands once in range, every read is of a
    /// previously written element, every element gets written). Set by
    /// [`prove_clean`]; lets [`Tape::execute`] drop the written-bitset
    /// and range checks entirely.
    clean: bool,
    /// Instruction-major execution schedule for preverified tapes: the
    /// strongly connected components of the body's dependence summary
    /// graph, in topological order (body indices, body order within a
    /// component). A singleton component is a streamable instruction —
    /// its whole iteration interval runs as one tight loop; a larger
    /// component (a recurrence) runs iteration-major. `None` when the
    /// body has bitset-only guards, which also disables streaming.
    plan: Option<Vec<Vec<u32>>>,
}

impl Tape {
    /// Whether the compile-time discipline proof went through, i.e.
    /// whether [`Tape::execute`] runs the unchecked fast loop. Generated
    /// programs (one uniform index stride, registers set up before the
    /// loop) always preverify; hand-mutated programs with real faults
    /// never do.
    pub fn preverified(&self) -> bool {
        self.clean
    }
}

/// Compile-time lowering state.
struct Compiler<'p> {
    p: &'p LoopProgram,
    n: i64,
    cells_per_array: usize,
    insts: Vec<TapeInst>,
    srcs: Vec<Slot>,
    guard_words: Vec<u64>,
    /// Dense conditional-register file: `reg_index[id]` -> slot,
    /// `regs[slot]` is `Some((value, bound))` once `setup`.
    reg_index: BTreeMap<u32, usize>,
    regs: Vec<Option<(i64, i64)>>,
    executed: u64,
    nullified: u64,
    max_srcs: usize,
}

/// One register-relevant step of the kernel, in body order, for the
/// compile-time guard simulation.
enum SimStep {
    Setup {
        slot: usize,
        init: i64,
        bound: i64,
    },
    Dec {
        slot: usize,
        by: i64,
        reg: u32,
        /// Tape instructions emitted before this step in the body.
        pos: usize,
    },
    Guard {
        slot: usize,
        offset: i64,
        /// Word offset of this instruction's predicate bitset.
        bits: usize,
        reg: u32,
        dest_array: u32,
        pos: usize,
    },
}

impl<'p> Compiler<'p> {
    fn new(p: &'p LoopProgram) -> Self {
        // Dense register slots: every id mentioned anywhere in the
        // program, in id order.
        let mut reg_index = BTreeMap::new();
        let mut scan = |insts: &[Inst]| {
            for inst in insts {
                match inst {
                    Inst::Setup { reg, .. } | Inst::Dec { reg, .. } => {
                        let next = reg_index.len();
                        reg_index.entry(reg.0).or_insert(next);
                    }
                    Inst::Compute { guard: Some(g), .. } => {
                        let next = reg_index.len();
                        reg_index.entry(g.reg.0).or_insert(next);
                    }
                    Inst::Compute { guard: None, .. } => {}
                }
            }
        };
        scan(&p.pre);
        if let Some(l) = &p.body {
            scan(&l.body);
        }
        scan(&p.post);
        let regs = vec![None; reg_index.len()];
        Compiler {
            p,
            n: p.n as i64,
            cells_per_array: (p.n as usize).div_ceil(64) * 64,
            insts: Vec::new(),
            srcs: Vec::new(),
            guard_words: Vec::new(),
            reg_index,
            regs,
            executed: 0,
            nullified: 0,
            max_srcs: 0,
        }
    }

    fn reg_slot(&self, id: u32) -> usize {
        self.reg_index[&id]
    }

    fn resolve(&self, r: &cred_codegen::Ref) -> Slot {
        let (scale, offset) = match r.index {
            Index::Const(k) => (0, k),
            Index::NPlus(k) => (0, self.n + k),
            Index::Loop { scale, offset } => (scale, offset),
        };
        Slot {
            array: r.array,
            base: r.array as usize * self.cells_per_array,
            scale,
            offset,
        }
    }

    fn emit(
        &mut self,
        dest: &cred_codegen::Ref,
        op: OpKind,
        srcs: &[cred_codegen::Ref],
        enable: Enable,
    ) {
        let start = self.srcs.len() as u32;
        for s in srcs {
            let slot = self.resolve(s);
            self.srcs.push(slot);
        }
        self.max_srcs = self.max_srcs.max(srcs.len());
        self.insts.push(TapeInst {
            dest: self.resolve(dest),
            op,
            srcs: (start, srcs.len() as u32),
            enable,
        });
    }

    /// The tree-walker's guard test against the simulated register file.
    fn guard_enabled(&self, g: &Guard, node: u32, i: i64) -> Result<bool, ExecError> {
        let (value, bound) =
            self.regs[self.reg_slot(g.reg.0)].ok_or_else(|| ExecError::UnboundRegister {
                reg: g.reg.0,
                at: Site {
                    node: self.p.arrays[node as usize].clone(),
                    iteration: i,
                },
            })?;
        let eff = value - g.offset;
        Ok(bound < eff && eff <= 0)
    }

    /// Lower one straight-line (pre/post) instruction at `i = 0`.
    /// Guard-disabled computes are dropped (counted as nullified);
    /// register faults abort lowering of the rest of the chunk.
    fn lower_straight(&mut self, inst: &Inst) -> Result<(), ExecError> {
        match inst {
            Inst::Setup { reg, init, bound } => {
                let slot = self.reg_slot(reg.0);
                self.regs[slot] = Some((*init, *bound));
                Ok(())
            }
            Inst::Dec { reg, by } => {
                let slot = self.reg_slot(reg.0);
                match &mut self.regs[slot] {
                    Some(entry) => {
                        entry.0 -= by;
                        Ok(())
                    }
                    None => Err(ExecError::UnboundRegister {
                        reg: reg.0,
                        at: Site {
                            node: format!("p{}", reg.0 + 1),
                            iteration: 0,
                        },
                    }),
                }
            }
            Inst::Compute {
                guard,
                dest,
                op,
                srcs,
            } => {
                if let Some(g) = guard {
                    if !self.guard_enabled(g, dest.array, 0)? {
                        self.nullified += 1;
                        return Ok(());
                    }
                }
                self.emit(dest, *op, srcs, Enable::Always);
                self.executed += 1;
                Ok(())
            }
        }
    }

    /// Lower the kernel: emit every compute once, then simulate the
    /// register bookkeeping across all `trip` iterations to fill the
    /// predicate bitsets (and catch register faults at their exact
    /// position).
    fn lower_body(&mut self, l: &cred_codegen::LoopSpec) -> BodyChunk {
        let start = self.insts.len();
        let trip = l.trip_count();
        let words_per_inst = trip.div_ceil(64) as usize;
        let mut steps = Vec::new();
        let mut plain = 0u64;
        // Bitset offsets are assigned up front but the pool is only
        // materialized if the scalar simulation actually runs — the
        // affine path proves with intervals and never reads a bitset.
        let mut pool = 0usize;
        if trip > 0 {
            for inst in &l.body {
                let pos = self.insts.len() - start;
                match inst {
                    Inst::Setup { reg, init, bound } => steps.push(SimStep::Setup {
                        slot: self.reg_slot(reg.0),
                        init: *init,
                        bound: *bound,
                    }),
                    Inst::Dec { reg, by } => steps.push(SimStep::Dec {
                        slot: self.reg_slot(reg.0),
                        by: *by,
                        reg: reg.0,
                        pos,
                    }),
                    Inst::Compute {
                        guard,
                        dest,
                        op,
                        srcs,
                    } => match guard {
                        None => {
                            self.emit(dest, *op, srcs, Enable::Always);
                            plain += 1;
                        }
                        Some(g) => {
                            let bits = pool;
                            pool += words_per_inst;
                            steps.push(SimStep::Guard {
                                slot: self.reg_slot(g.reg.0),
                                offset: g.offset,
                                bits,
                                reg: g.reg.0,
                                dest_array: dest.array,
                                pos,
                            });
                            self.emit(dest, *op, srcs, Enable::Bits(bits));
                        }
                    },
                }
            }
        }
        self.executed += plain * trip;
        let fault = if trip == 0 || self.affine_sim(l, &steps, trip, start) {
            None
        } else {
            self.guard_words.resize(pool, 0);
            self.scalar_sim(l, &steps, trip)
        };
        BodyChunk {
            insts: start..self.insts.len(),
            lo: l.lo,
            step: l.step,
            trip,
            fault,
        }
    }

    /// The general register simulation: replay every step of every
    /// iteration. Every instruction of the body is reached on every
    /// iteration, so a register fault surfaces the first time its step
    /// runs unbound.
    fn scalar_sim(
        &mut self,
        l: &cred_codegen::LoopSpec,
        steps: &[SimStep],
        trip: u64,
    ) -> Option<(u64, usize, ExecError)> {
        let mut fault = None;
        let mut i = l.lo;
        'iters: for t in 0..trip {
            for step in steps {
                match *step {
                    SimStep::Setup { slot, init, bound } => self.regs[slot] = Some((init, bound)),
                    SimStep::Dec { slot, by, reg, pos } => match &mut self.regs[slot] {
                        Some(entry) => entry.0 -= by,
                        None => {
                            fault = Some((
                                t,
                                pos,
                                ExecError::UnboundRegister {
                                    reg,
                                    at: Site {
                                        node: format!("p{}", reg + 1),
                                        iteration: i,
                                    },
                                },
                            ));
                            break 'iters;
                        }
                    },
                    SimStep::Guard {
                        slot,
                        offset,
                        bits,
                        reg,
                        dest_array,
                        pos,
                    } => match self.regs[slot] {
                        Some((value, bound)) => {
                            let eff = value - offset;
                            if bound < eff && eff <= 0 {
                                self.guard_words[bits + (t >> 6) as usize] |= 1 << (t & 63);
                                self.executed += 1;
                            } else {
                                self.nullified += 1;
                            }
                        }
                        None => {
                            fault = Some((
                                t,
                                pos,
                                ExecError::UnboundRegister {
                                    reg,
                                    at: Site {
                                        node: self.p.arrays[dest_array as usize].clone(),
                                        iteration: i,
                                    },
                                },
                            ));
                            break 'iters;
                        }
                    },
                }
            }
            if let Some(k) = l.auto_dec {
                for entry in self.regs.iter_mut().flatten() {
                    entry.0 -= k;
                }
            }
            i += l.step;
        }
        fault
    }

    /// The fast register simulation for the common generated shape: no
    /// `setup` inside the loop, every register the body touches already
    /// bound, and a non-negative constant decrement per iteration. Then
    /// each register's value is affine in the iteration index, every
    /// guard's enabled set is one contiguous `t`-interval solvable in
    /// O(1), and the predicate bitsets are filled a word at a time.
    ///
    /// Returns `false` (having changed nothing) when the shape does not
    /// hold or any intermediate value could leave `i64` range — the
    /// scalar replay is the authority on wrap-around and fault positions.
    fn affine_sim(
        &mut self,
        l: &cred_codegen::LoopSpec,
        steps: &[SimStep],
        trip: u64,
        start: usize,
    ) -> bool {
        let auto = l.auto_dec.unwrap_or(0) as i128;
        // Eligibility, and the per-iteration decrement of every register.
        let mut per_iter = vec![auto; self.regs.len()];
        for step in steps {
            match *step {
                SimStep::Setup { .. } => return false,
                SimStep::Dec { slot, by, .. } => {
                    if self.regs[slot].is_none() {
                        return false;
                    }
                    per_iter[slot] += by as i128;
                }
                SimStep::Guard { slot, .. } => {
                    if self.regs[slot].is_none() {
                        return false;
                    }
                }
            }
        }
        let last = (trip - 1) as i128;
        // Solve every guard window first; commit only if all are affine
        // and wrap-free.
        let mut windows: Vec<(usize, u64, u64)> = Vec::new(); // (pos, t0, t1)
        let mut seen = vec![0i128; self.regs.len()]; // decrements before the current step
        for step in steps {
            match *step {
                SimStep::Setup { .. } => unreachable!("checked above"),
                SimStep::Dec { slot, by, .. } => seen[slot] += by as i128,
                SimStep::Guard {
                    slot, offset, pos, ..
                } => {
                    let (value, bound) = self.regs[slot].expect("checked above");
                    let d = per_iter[slot];
                    if d < 0 {
                        return false;
                    }
                    // eff(t) = e0 - d*t; enabled iff bound < eff(t) <= 0.
                    let e0 = value as i128 - seen[slot] - offset as i128;
                    let (lo_ext, hi_ext) = (e0 - d * last, e0);
                    if lo_ext < i64::MIN as i128 || hi_ext > i64::MAX as i128 {
                        return false;
                    }
                    let b = bound as i128;
                    let (t0, t1) = if d == 0 {
                        if b < e0 && e0 <= 0 {
                            (0, last)
                        } else {
                            (0, -1)
                        }
                    } else {
                        // eff(t) <= 0  <=>  t >= e0/d (ceil);
                        // eff(t) > b   <=>  t < (e0-b)/d (strict), i.e.
                        //                   t <= ceil((e0-b)/d) - 1.
                        let (q0, r0) = divmod(e0, d);
                        let t0 = q0 + i128::from(r0 != 0);
                        let num = e0 - b;
                        let (q1, r1) = divmod(num, d);
                        let t1 = q1 + i128::from(r1 != 0) - 1;
                        (t0.max(0), t1.min(last))
                    };
                    windows.push(if t0 <= t1 {
                        (pos, t0 as u64, t1 as u64)
                    } else {
                        (pos, 1, 0) // empty interval
                    });
                }
            }
        }
        // Final register values: i64 arithmetic wraps like the scalar
        // replay's repeated subtraction (same ring), so wrapping ops are
        // exact here even where the window solve above had to bail.
        for (slot, entry) in self.regs.iter_mut().enumerate() {
            if let Some((value, _)) = entry {
                *value = value.wrapping_sub((per_iter[slot] as i64).wrapping_mul(trip as i64));
            }
        }
        // Commit the windows as interval metadata; the discipline proof
        // and both executors consume the interval directly, so no bitset
        // is ever materialized on this path.
        for (pos, t0, t1) in windows {
            self.insts[start + pos].enable = Enable::Window(t0, t1);
            let len = if t0 <= t1 { t1 - t0 + 1 } else { 0 };
            self.executed += len;
            self.nullified += trip - len;
        }
        true
    }
}

// --- Compile-time discipline proof --------------------------------------
//
// Everything the checked executor polices — write ranges, single
// assignment, use-before-def order, completeness — is data-independent:
// a property of the affine index expressions and the precomputed guard
// bitsets alone. When every loop-varying reference in the body shares
// one index stride `d = scale * step` (true for every generated
// program), the elements of each array split into `d` independent
// residue classes, and each body instruction maps its enabled-iteration
// bitset into a class by a constant shift. The whole discipline then
// reduces to shifted word-parallel bitset algebra, 64 instruction
// instances per operation:
//
// * a write collision is a nonzero AND between a shifted enabled-set
//   and the class's accumulated write-set;
// * a read at iteration `t` is covered exactly when some writer's
//   enabled-set, shifted by the difference of the two slot shifts,
//   has bit `t` — and the sign of that difference alone decides
//   whether the writing instance comes earlier;
// * completeness is a counting identity: with no collisions and no
//   out-of-range writes, "every element written" is exactly
//   "executed computes == arrays * n".
//
// The proof is one-sided. `true` guarantees the checked executor cannot
// fault, so [`Tape::execute`] may run the unchecked loop; `false` only
// means "run the checked loop", which replays any real fault at its
// exact position. All index arithmetic here is `i128` so the proof
// reasons about true values; in-range conclusions transfer to the
// executor's `i64` arithmetic because wrapping ops agree with true
// arithmetic whenever the true value fits.

/// First set bit among the low `bits` of `words`.
fn first_set(words: &[u64], bits: usize) -> Option<usize> {
    for (w, &word) in words.iter().enumerate() {
        let word = mask_tail(word, w, bits);
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
    }
    None
}

/// Last set bit among the low `bits` of `words`.
fn last_set(words: &[u64], bits: usize) -> Option<usize> {
    for (w, &word) in words.iter().enumerate().rev() {
        let word = mask_tail(word, w, bits);
        if word != 0 {
            return Some(w * 64 + 63 - word.leading_zeros() as usize);
        }
    }
    None
}

/// Zero any bits of word `w` at positions `>= bits`.
fn mask_tail(word: u64, w: usize, bits: usize) -> u64 {
    let tail = bits as i128 - w as i128 * 64;
    if tail <= 0 {
        0
    } else if tail < 64 {
        word & ((1u64 << tail) - 1)
    } else {
        word
    }
}

/// Word `w` of the shifted stream `out[p] = src[p - shift]`; bits of
/// `src` outside `[0, src_bits)` read as zero.
fn shifted_word(src: &[u64], src_bits: usize, shift: i128, w: usize) -> u64 {
    let word_at = |i: i128| -> u64 {
        if i < 0 || i >= src.len() as i128 {
            0
        } else {
            mask_tail(src[i as usize], i as usize, src_bits)
        }
    };
    let base = (w as i128) * 64 - shift;
    let sw = base.div_euclid(64);
    let off = base.rem_euclid(64) as u32;
    if off == 0 {
        word_at(sw)
    } else {
        (word_at(sw) >> off) | (word_at(sw + 1) << (64 - off))
    }
}

/// Word `w` of the mask of positions `t` with `lo <= t <= hi`.
fn mask_range(lo: i128, hi: i128, w: usize) -> u64 {
    let (wlo, whi) = ((w as i128) * 64, (w as i128) * 64 + 63);
    let lo = lo.max(wlo);
    let hi = hi.min(whi);
    if lo > hi {
        return 0;
    }
    let l = (lo - wlo) as u32;
    let h = (hi - wlo) as u32;
    (u64::MAX >> (63 - h)) & (u64::MAX << l)
}

/// Per-array, per-residue-class write-sets in position space
/// (`position = (index - residue) / stride`).
type Classes = BTreeMap<(u32, i128), Vec<u64>>;

/// One interval-form body writer: `(class, body index, shift, p0, p1)`.
type IntervalWriter = ((u32, i128), usize, i128, i128, i128);

/// Per-class bitset-form body writers: `(body position, enabled bits,
/// class shift)` each.
type BitsetWriters<'a> = BTreeMap<(u32, i128), Vec<(usize, &'a [u64], i128)>>;

fn class_bit(classes: &Classes, array: u32, idx: i128, d: i128) -> bool {
    let r = idx.rem_euclid(d);
    let p = idx.div_euclid(d) as usize;
    classes
        .get(&(array, r))
        .is_some_and(|w| (w[p >> 6] >> (p & 63)) & 1 == 1)
}

/// Set the bit for `idx`; `false` if it was already set (a double write).
fn class_set(classes: &mut Classes, array: u32, idx: i128, d: i128, pw: usize) -> bool {
    let r = idx.rem_euclid(d);
    let p = idx.div_euclid(d) as usize;
    let words = classes.entry((array, r)).or_insert_with(|| vec![0; pw]);
    let (w, m) = (p >> 6, 1u64 << (p & 63));
    if words[w] & m != 0 {
        return false;
    }
    words[w] |= m;
    true
}

/// Try to prove no [`ExecError`] is reachable. See the module comment
/// block above for the method; `false` is always safe. Dispatches to an
/// interval sweep when every body guard is affine (the common generated
/// shape — no bitsets are even materialized then) and to the word-wise
/// bitset algebra when the scalar simulation left `Enable::Bits`
/// predicates behind.
fn prove_clean(tape: &Tape) -> bool {
    if tape.pre.fault.is_some() || tape.post.fault.is_some() {
        return false;
    }
    if matches!(&tape.body, Some(b) if b.fault.is_some()) {
        return false;
    }
    let n = tape.n as i128;
    // Completeness, assuming the rest of the proof lands: every executed
    // compute writes exactly one distinct in-range element.
    if tape.executed != tape.arrays.len() as u64 * tape.n as u64 {
        return false;
    }

    let (trip, lo, step, binsts): (u64, i64, i64, &[TapeInst]) = match &tape.body {
        Some(b) => (b.trip, b.lo, b.step, &tape.insts[b.insts.clone()]),
        None => (0, 0, 1, &[]),
    };
    // One uniform stride across every loop-varying slot in the body.
    let mut scale: Option<i64> = None;
    for inst in binsts {
        if inst.dest.scale == 0 {
            return false; // fixed-slot dest inside a loop: stay checked
        }
        for s in std::iter::once(&inst.dest).chain(tape.src_slots(inst)) {
            match (s.scale, scale) {
                (0, _) => {}
                (sc, None) => scale = Some(sc),
                (sc, Some(u)) if sc == u => {}
                _ => return false,
            }
        }
    }
    let su = match scale {
        Some(s) if s >= 1 => s as i128,
        Some(_) => return false,
        None => 1,
    };
    let d = su * step as i128; // step >= 1 whenever a body exists
    if d < 1 {
        return false;
    }
    if binsts.iter().any(|i| matches!(i.enable, Enable::Bits(_))) {
        prove_clean_words(tape, n, trip, lo, binsts, d)
    } else {
        prove_clean_intervals(tape, n, trip, lo, binsts, d)
    }
}

/// `(div_euclid, rem_euclid)` in one step, with a shift/mask fast path
/// for power-of-two divisors. `d` is `stride * step` in practice —
/// almost always 1, 2, or 4 — and `i128` software division is the
/// single most expensive operation in the proof and the planner.
#[inline]
fn divmod(a: i128, d: i128) -> (i128, i128) {
    debug_assert!(d > 0);
    if d & (d - 1) == 0 {
        // Arithmetic shift is floor division; the mask is the
        // non-negative Euclidean remainder (two's complement).
        (a >> d.trailing_zeros(), a & (d - 1))
    } else {
        (a.div_euclid(d), a.rem_euclid(d))
    }
}

/// The interval prover: with every body enabled-set a contiguous
/// `t`-interval, each instruction's touched elements form one contiguous
/// run of positions inside its residue class, and the whole discipline
/// is a handful of interval comparisons and one sorted sweep per source
/// — no per-word work at all.
fn prove_clean_intervals(
    tape: &Tape,
    n: i128,
    trip: u64,
    lo: i64,
    binsts: &[TapeInst],
    d: i128,
) -> bool {
    // (array, residue, position) of every straight-line write, pre chunk
    // first. Straight-line chunks are small; linear scans beat building
    // maps.
    let mut points: Vec<(u32, i128, i128)> = Vec::new();
    let key = |array: u32, idx: i128| {
        let (q, r) = divmod(idx, d);
        (array, r, q)
    };
    for inst in &tape.insts[tape.pre.insts.clone()] {
        for s in tape.src_slots(inst) {
            let idx = s.offset as i128; // i = 0
            if idx <= 0 {
                continue; // reads as zero
            }
            if idx > n || !points.contains(&key(s.array, idx)) {
                return false;
            }
        }
        let idx = inst.dest.offset as i128;
        if !(1..=n).contains(&idx) {
            return false;
        }
        let p = key(inst.dest.array, idx);
        if points.contains(&p) {
            return false;
        }
        points.push(p);
    }

    // Body writers: per instruction one position interval
    // `[t0 + shift, t1 + shift]` in class `(array, residue)`.
    let mut writers: Vec<IntervalWriter> = Vec::new();
    for (k, inst) in binsts.iter().enumerate() {
        let (t0, t1) = window_of(inst, trip);
        if t0 > t1 {
            continue; // never enabled: writes nothing
        }
        let c = inst.dest.scale as i128 * lo as i128 + inst.dest.offset as i128;
        // idx(t) = d*t + c is increasing in t, so the extremes bound all
        // enabled writes.
        if d * t0 as i128 + c < 1 || d * t1 as i128 + c > n {
            return false;
        }
        let (s, r) = divmod(c, d);
        writers.push(((inst.dest.array, r), k, s, t0 as i128 + s, t1 as i128 + s));
    }
    // Single assignment: no two writer runs of one class may overlap,
    // and none may hit a pre-written point.
    for (i, &(cls, _, _, p0, p1)) in writers.iter().enumerate() {
        for &(cls2, _, _, q0, q1) in &writers[..i] {
            if cls == cls2 && p0 <= q1 && q0 <= p1 {
                return false;
            }
        }
        if points
            .iter()
            .any(|&(a, r, p)| (a, r) == cls && (p0..=p1).contains(&p))
        {
            return false;
        }
    }

    // Body readers: every enabled read must be in range (or <= 0, which
    // reads as zero) and covered by the pre chunk or an earlier writing
    // instance. Coverage candidates, mapped into the reader's own
    // iteration space, are intervals; a sorted sweep decides inclusion.
    let mut cover: Vec<(i128, i128)> = Vec::new();
    for (j, inst) in binsts.iter().enumerate() {
        let (t0, t1) = window_of(inst, trip);
        if t0 > t1 {
            continue;
        }
        for src in tape.src_slots(inst) {
            if src.scale == 0 {
                let idx = src.offset as i128;
                if idx <= 0 {
                    continue;
                }
                // A fixed slot read every iteration: require it written
                // before the loop.
                if idx > n || !points.contains(&key(src.array, idx)) {
                    return false;
                }
                continue;
            }
            let c = src.scale as i128 * lo as i128 + src.offset as i128;
            // The executors evaluate this index in `i64`; require the
            // enabled extremes (the index is monotone in `t`) to fit, so
            // wrapped arithmetic agrees with the true values this proof
            // reasons about. Write indices are already forced into
            // `1..=n` above.
            if d * t0 as i128 + c < i64::MIN as i128 || d * t1 as i128 + c > i64::MAX as i128 {
                return false;
            }
            // idx(t) in 1..=n exactly for t in [t_lo, t_hi].
            let num = 1 - c;
            let (q, rm) = divmod(num, d);
            let t_lo = q + i128::from(rm != 0);
            let t_hi = divmod(n - c, d).0;
            if t1 as i128 > t_hi {
                return false; // enabled past t_hi: an out-of-range read
            }
            let rlo = (t0 as i128).max(t_lo);
            let rhi = t1 as i128;
            if rlo > rhi {
                continue; // whole window reads zeros
            }
            let (sh, r) = divmod(c, d);
            // Candidate cover, in reader iteration space: a position `p`
            // covers iteration `t = p - sh`. A body writer counts only
            // if its instances come first: distance `delta = sh - s`
            // strictly negative, or zero with the writer ahead in the
            // body.
            cover.clear();
            for &(cls, k, s, p0, p1) in &writers {
                if cls != (src.array, r) {
                    continue;
                }
                let delta = sh - s;
                if delta < 0 || (delta == 0 && k < j) {
                    cover.push((p0 - sh, p1 - sh));
                }
            }
            for &(a, pr, p) in &points {
                if (a, pr) == (src.array, r) {
                    cover.push((p - sh, p - sh));
                }
            }
            cover.sort_unstable();
            let mut next = rlo;
            for &(a, b) in cover.iter() {
                if a > next {
                    break;
                }
                next = next.max(b + 1);
            }
            if next <= rhi {
                return false;
            }
        }
    }

    // Post chunk, sequentially, over everything written so far.
    let covered = |points: &[(u32, i128, i128)], cls: (u32, i128), p: i128| {
        points.iter().any(|&(a, r, q)| (a, r) == cls && q == p)
            || writers
                .iter()
                .any(|&(wcls, _, _, p0, p1)| wcls == cls && (p0..=p1).contains(&p))
    };
    for inst in &tape.insts[tape.post.insts.clone()] {
        for s in tape.src_slots(inst) {
            let idx = s.offset as i128;
            if idx <= 0 {
                continue;
            }
            let (a, r, p) = key(s.array, idx);
            if idx > n || !covered(&points, (a, r), p) {
                return false;
            }
        }
        let idx = inst.dest.offset as i128;
        if !(1..=n).contains(&idx) {
            return false;
        }
        let (a, r, p) = key(inst.dest.array, idx);
        if covered(&points, (a, r), p) {
            return false;
        }
        points.push((a, r, p));
    }
    true
}

/// The word-wise prover, for tapes whose scalar simulation left bitset
/// predicates behind.
fn prove_clean_words(
    tape: &Tape,
    n: i128,
    trip: u64,
    lo: i64,
    binsts: &[TapeInst],
    d: i128,
) -> bool {
    let pbits = (n / d) as usize + 1;
    let pw = pbits.div_ceil(64);
    let trip_words = trip.div_ceil(64) as usize;
    let mut ones = vec![u64::MAX; trip_words];
    if let Some(w) = ones.last_mut() {
        *w = mask_tail(*w, trip_words - 1, trip as usize);
    }
    let enabled = |inst: &TapeInst| -> &[u64] {
        match inst.enable {
            Enable::Always => &ones,
            Enable::Bits(off) => &tape.guard_words[off..off + trip_words],
            // Window enables only come from the affine simulation, which
            // routes to the interval prover instead.
            Enable::Window(..) => unreachable!("interval tapes use prove_clean_intervals"),
        }
    };

    // Pre chunk, sequentially: const indices, single instances.
    let mut classes: Classes = BTreeMap::new();
    let straight = |classes: &mut Classes, inst: &TapeInst| -> bool {
        for s in tape.src_slots(inst) {
            let idx = s.offset as i128; // i = 0
            if idx <= 0 {
                continue; // reads as zero
            }
            if idx > n || !class_bit(classes, s.array, idx, d) {
                return false;
            }
        }
        let idx = inst.dest.offset as i128;
        (1..=n).contains(&idx) && class_set(classes, inst.dest.array, idx, d, pw)
    };
    for inst in &tape.insts[tape.pre.insts.clone()] {
        if !straight(&mut classes, inst) {
            return false;
        }
    }
    let prewritten = classes.clone();

    // Body writers: place every enabled write into its class, 64 at a
    // time, with collision detection; the per-class entries are kept
    // for the reader pass.
    let mut writers: BitsetWriters = BTreeMap::new();
    for (j, inst) in binsts.iter().enumerate() {
        let bits = enabled(inst);
        let Some(t_first) = first_set(bits, trip as usize) else {
            continue; // never enabled: writes nothing, reads nothing
        };
        let t_last = last_set(bits, trip as usize).expect("nonempty");
        let c = inst.dest.scale as i128 * lo as i128 + inst.dest.offset as i128;
        // idx(t) = d*t + c is increasing in t, so the extremes bound all
        // enabled writes.
        if d * t_first as i128 + c < 1 || d * t_last as i128 + c > n {
            return false;
        }
        let (s, r) = divmod(c, d);
        let class = classes
            .entry((inst.dest.array, r))
            .or_insert_with(|| vec![0; pw]);
        #[allow(clippy::needless_range_loop)] // `w` also feeds shifted_word
        for w in 0..pw {
            let add = shifted_word(bits, trip as usize, s, w);
            if add == 0 {
                continue;
            }
            if class[w] & add != 0 {
                return false;
            }
            class[w] |= add;
        }
        writers
            .entry((inst.dest.array, r))
            .or_default()
            .push((j, bits, s));
    }

    // Body readers: every enabled read must be in `1..=n` (or <= 0,
    // which reads as zero) and covered by the pre chunk or by an
    // earlier writing instance.
    for (j, inst) in binsts.iter().enumerate() {
        let bits = enabled(inst);
        let Some(t_first) = first_set(bits, trip as usize) else {
            continue;
        };
        let t_last = last_set(bits, trip as usize).expect("nonempty");
        for src in tape.src_slots(inst) {
            if src.scale == 0 {
                let idx = src.offset as i128;
                if idx <= 0 {
                    continue;
                }
                // A fixed slot read every iteration: require it written
                // before the loop.
                if idx > n || !class_bit(&prewritten, src.array, idx, d) {
                    return false;
                }
                continue;
            }
            let c = src.scale as i128 * lo as i128 + src.offset as i128;
            // The executors evaluate this index in `i64`; require the
            // enabled extremes (the index is monotone in `t`) to fit, so
            // wrapped arithmetic agrees with the true values this proof
            // reasons about. Write indices are already forced into
            // `1..=n` above.
            if d * t_first as i128 + c < i64::MIN as i128
                || d * t_last as i128 + c > i64::MAX as i128
            {
                return false;
            }
            let (sh, r) = divmod(c, d);
            // idx(t) in 1..=n exactly for t in [t_lo, t_hi].
            let num = 1 - c;
            let (q, rm) = divmod(num, d);
            let t_lo = q + i128::from(rm != 0);
            let t_hi = divmod(n - c, d).0;
            let pre_class = prewritten.get(&(src.array, r));
            let wlist = writers.get(&(src.array, r)).map_or(&[][..], |v| v);
            #[allow(clippy::needless_range_loop)] // `w` also feeds mask_range
            for w in 0..trip_words {
                let b = bits[w];
                if b == 0 {
                    continue;
                }
                // Enabled above t_hi: an out-of-range read.
                if b & !mask_range(i128::MIN, t_hi, w) != 0 {
                    return false;
                }
                let need = b & mask_range(t_lo, t_hi, w);
                if need == 0 {
                    continue;
                }
                let mut cov = shifted_word(pre_class.map_or(&[][..], |v| v), pbits, -sh, w);
                for &(k, kbits, ks) in wlist {
                    // Reader bit t is covered by writer instance
                    // u = t + (sh - ks); earlier means u < t, or u == t
                    // with the writer ahead in the body.
                    let delta = sh - ks;
                    if delta > 0 || (delta == 0 && k >= j) {
                        continue;
                    }
                    cov |= shifted_word(kbits, trip as usize, -delta, w);
                }
                if need & !cov != 0 {
                    return false;
                }
            }
        }
    }

    // Post chunk, sequentially, over everything written so far.
    for inst in &tape.insts[tape.post.insts.clone()] {
        if !straight(&mut classes, inst) {
            return false;
        }
    }
    true
}

/// The enabled iteration interval of a streamable instruction (empty
/// when `t0 > t1`). Only called on tapes with a plan, which excludes
/// bitset guards; `trip` must be nonzero.
fn window_of(inst: &TapeInst, trip: u64) -> (u64, u64) {
    match inst.enable {
        Enable::Always => (0, trip - 1),
        Enable::Window(t0, t1) => (t0, t1),
        Enable::Bits(_) => unreachable!("streamed plan excludes bitset guards"),
    }
}

// --- Instruction-major scheduling ---------------------------------------
//
// On a proven-clean tape the body can be reordered instruction-major:
// run instruction 0 across all its iterations, then instruction 1, and
// so on — each as one tight loop with the op match hoisted out. The
// legality argument rides on the same residue-class algebra as the
// proof. Two body instructions can only interact through an array
// element both touch, which forces them into one class and makes every
// interacting instance pair share the constant `delta = shift(reader) -
// shift(writer)`: reader iteration `t` reads what writer iteration
// `t + delta` wrote. Single assignment kills output dependences, the
// use-before-def discipline kills anti-dependences, and a `delta > 0`
// true dependence would itself be a use-before-def — so on a clean tape
// the only constraints left are writer-before-reader pairs with
// `delta < 0`, or `delta == 0` with the writer earlier in the body.
// Those edges summarize *all* instances at once; scheduling the
// strongly connected components of that graph in topological order, and
// the rare multi-instruction recurrence component iteration-major, is
// an order-preserving projection of the original execution.

/// Build the instruction-major schedule for a proven-clean tape, or
/// `None` if the body has bitset-shaped guards (non-interval enabled
/// sets stay iteration-major).
fn dependence_plan(tape: &Tape) -> Option<Vec<Vec<u32>>> {
    let Some(b) = &tape.body else {
        return Some(Vec::new());
    };
    let binsts = &tape.insts[b.insts.clone()];
    let m = binsts.len();
    if m == 0 {
        return Some(Vec::new());
    }
    if binsts.iter().any(|i| matches!(i.enable, Enable::Bits(_))) {
        return None;
    }
    // The uniform stride prove_clean already established; recomputed
    // rather than stored.
    let mut scale = 1i64;
    for inst in binsts {
        for s in std::iter::once(&inst.dest).chain(tape.src_slots(inst)) {
            if s.scale != 0 {
                scale = s.scale;
            }
        }
    }
    let d = i128::from(scale) * i128::from(b.step);
    let key = |s: &Slot| {
        let c = i128::from(s.scale) * i128::from(b.lo) + i128::from(s.offset);
        let (q, r) = divmod(c, d);
        ((s.array, r), q)
    };
    let n = i128::from(tape.n);
    let win = |inst: &TapeInst| window_of(inst, b.trip);
    let mut writers: BTreeMap<(u32, i128), Vec<(usize, i128)>> = BTreeMap::new();
    for (k, inst) in binsts.iter().enumerate() {
        let (cls, s) = key(&inst.dest);
        writers.entry(cls).or_default().push((k, s));
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (j, inst) in binsts.iter().enumerate() {
        let (t0_j, t1_j) = win(inst);
        if t0_j > t1_j {
            continue;
        }
        for src in tape.src_slots(inst) {
            if src.scale == 0 {
                continue; // covered by the pre chunk, no body edge
            }
            let (cls, sh) = key(src);
            // Clip the reader's window to iterations whose read position
            // is in range (`idx <= 0` reads the constant zero, touching
            // no element); positions read are then `t + sh`.
            let c = i128::from(src.scale) * i128::from(b.lo) + i128::from(src.offset);
            let num = 1 - c;
            let (q, rm) = divmod(num, d);
            let t_lo = q + i128::from(rm != 0);
            let t_hi = divmod(n - c, d).0;
            let rlo = (t0_j as i128).max(t_lo);
            let rhi = (t1_j as i128).min(t_hi);
            if rlo > rhi {
                continue;
            }
            for &(k, ks) in writers.get(&cls).map_or(&[][..], |v| v) {
                let delta = sh - ks;
                // A self-recurrence (k == j, delta < 0) needs no edge:
                // the instruction's own loop runs t in increasing order.
                // delta > 0 pairs cannot overlap on a clean tape (that
                // overlap would itself be a use-before-def).
                if k == j || delta > 0 || (delta == 0 && k >= j) {
                    continue;
                }
                // Positions actually shared: reader reads [rlo+sh,
                // rhi+sh], writer k writes its own window shifted by ks.
                let (t0_k, t1_k) = win(&binsts[k]);
                if t0_k > t1_k {
                    continue;
                }
                if rlo + sh <= t1_k as i128 + ks && t0_k as i128 + ks <= rhi + sh {
                    adj[k].push(j as u32);
                }
            }
        }
    }
    Some(scc_topo(&adj))
}

/// Tarjan's strongly-connected-components, returned in topological
/// order of the condensation (every edge leads from an earlier to a
/// later component), members in body order.
fn scc_topo(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    struct St<'a> {
        adj: &'a [Vec<u32>],
        index: Vec<u32>, // 0 = unvisited, else visit order + 1
        low: Vec<u32>,
        on: Vec<bool>,
        stack: Vec<u32>,
        next: u32,
        out: Vec<Vec<u32>>,
    }
    fn dfs(st: &mut St, v: usize) {
        st.next += 1;
        st.index[v] = st.next;
        st.low[v] = st.next;
        st.stack.push(v as u32);
        st.on[v] = true;
        for i in 0..st.adj[v].len() {
            let w = st.adj[v][i] as usize;
            if st.index[w] == 0 {
                dfs(st, w);
                st.low[v] = st.low[v].min(st.low[w]);
            } else if st.on[w] {
                st.low[v] = st.low[v].min(st.index[w]);
            }
        }
        if st.low[v] == st.index[v] {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().expect("component root still on stack");
                st.on[w as usize] = false;
                comp.push(w);
                if w as usize == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.out.push(comp);
        }
    }
    let m = adj.len();
    let mut st = St {
        adj,
        index: vec![0; m],
        low: vec![0; m],
        on: vec![false; m],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..m {
        if st.index[v] == 0 {
            dfs(&mut st, v);
        }
    }
    // Tarjan emits components in reverse topological order.
    st.out.reverse();
    st.out
}

/// Lower `p` into a [`Tape`]. Pure except for the
/// [`VM_COMPILE`](failpoint::sites::VM_COMPILE) fail-point site at entry
/// (chaos testing); the only error is an injected one.
pub fn compile(p: &LoopProgram) -> Result<Tape, ExecError> {
    failpoint::hit(failpoint::sites::VM_COMPILE)
        .map_err(|e| ExecError::Injected { site: e.site })?;
    let mut c = Compiler::new(p);
    let mut pre = Chunk {
        insts: 0..0,
        fault: None,
    };
    for inst in &p.pre {
        if let Err(e) = c.lower_straight(inst) {
            pre.fault = Some(e);
            break;
        }
    }
    pre.insts = 0..c.insts.len();
    let mut body = None;
    if pre.fault.is_none() {
        if let Some(l) = &p.body {
            if l.step < 1 {
                pre.fault = Some(ExecError::InvalidLoop("step must be positive"));
            } else {
                body = Some(c.lower_body(l));
            }
        }
    }
    let post_start = c.insts.len();
    let mut post = Chunk {
        insts: post_start..post_start,
        fault: None,
    };
    let body_faulted = matches!(&body, Some(b) if b.fault.is_some());
    if pre.fault.is_none() && !body_faulted {
        for inst in &p.post {
            if let Err(e) = c.lower_straight(inst) {
                post.fault = Some(e);
                break;
            }
        }
        post.insts = post_start..c.insts.len();
    }
    let mut tape = Tape {
        n: c.n,
        arrays: p.arrays.clone(),
        cells_per_array: c.cells_per_array,
        insts: c.insts,
        srcs: c.srcs,
        guard_words: c.guard_words,
        pre,
        body,
        post,
        executed: c.executed,
        nullified: c.nullified,
        max_srcs: c.max_srcs,
        clean: false,
        plan: None,
    };
    tape.clean = prove_clean(&tape);
    // The instruction-major streamed schedule only repays its planning
    // cost (interval sort, SCC grouping) once the loop executes a few
    // thousand dynamic instructions; below that the iteration-major
    // unchecked loop is already optimal and the plan is pure compile
    // overhead — which is what verification fuzz cases (n <= 40) would
    // otherwise spend most of their executor budget on.
    let dyn_insts = tape
        .body
        .as_ref()
        .map_or(0, |b| b.trip.saturating_mul(b.insts.len() as u64));
    if tape.clean && dyn_insts >= 4096 {
        tape.plan = dependence_plan(&tape);
    }
    Ok(tape)
}

/// Mutable execution state: one flat value buffer plus a written-bitset,
/// and a reused input scratch vector (the tree-walker allocates one per
/// compute instance; the tape never allocates in the hot loop).
struct Run {
    vals: Vec<i64>,
    written: Vec<u64>,
    inputs: Vec<i64>,
}

impl Run {
    #[inline]
    fn step(&mut self, tape: &Tape, inst: &TapeInst, i: i64) -> Result<(), ExecError> {
        let n = tape.n;
        let dest_idx = inst.dest.scale * i + inst.dest.offset;
        let (start, len) = inst.srcs;
        self.inputs.clear();
        for s in &tape.srcs[start as usize..(start + len) as usize] {
            let idx = s.scale * i + s.offset;
            let v = if idx <= 0 {
                0 // initial conditions, e.g. E[-3]
            } else if idx > n {
                return Err(ExecError::OutOfRangeRead {
                    array: tape.arrays[s.array as usize].clone(),
                    index: idx,
                    at: tape.site(inst.dest.array, i),
                });
            } else {
                let slot = s.base + (idx - 1) as usize;
                if (self.written[slot >> 6] >> (slot & 63)) & 1 == 0 {
                    return Err(ExecError::UseBeforeDef {
                        array: tape.arrays[s.array as usize].clone(),
                        index: idx,
                        at: tape.site(inst.dest.array, i),
                    });
                }
                self.vals[slot]
            };
            self.inputs.push(v);
        }
        let val = inst.op.eval(&self.inputs, dest_idx);
        if !(1..=n).contains(&dest_idx) {
            return Err(ExecError::OutOfRangeWrite {
                array: tape.arrays[inst.dest.array as usize].clone(),
                index: dest_idx,
                at: tape.site(inst.dest.array, i),
            });
        }
        let slot = inst.dest.base + (dest_idx - 1) as usize;
        let word = &mut self.written[slot >> 6];
        let mask = 1u64 << (slot & 63);
        if *word & mask != 0 {
            return Err(ExecError::DoubleWrite {
                array: tape.arrays[inst.dest.array as usize].clone(),
                index: dest_idx,
                at: tape.site(inst.dest.array, i),
            });
        }
        *word |= mask;
        self.vals[slot] = val;
        Ok(())
    }

    /// Run `inst` at iteration index `t` (induction value `i`) if its
    /// predicate enables it.
    #[inline]
    fn step_enabled(
        &mut self,
        tape: &Tape,
        inst: &TapeInst,
        t: u64,
        i: i64,
    ) -> Result<(), ExecError> {
        match inst.enable {
            Enable::Always => self.step(tape, inst, i),
            Enable::Bits(off) => {
                if (tape.guard_words[off + (t >> 6) as usize] >> (t & 63)) & 1 == 1 {
                    self.step(tape, inst, i)
                } else {
                    Ok(())
                }
            }
            Enable::Window(t0, t1) => {
                if t0 <= t && t <= t1 {
                    self.step(tape, inst, i)
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// A streamed operand: cell index at iteration index `t` is
/// `adv * t + c` (wrapping, which the discipline proof showed agrees
/// with the true affine value for every enabled instance).
#[derive(Clone, Copy)]
struct Lane {
    base: usize,
    adv: i64,
    c: i64,
}

/// Read cell `idx` of the array at `base`, with `idx <= 0` reading as
/// zero (initial conditions, e.g. `E[-3]`).
///
/// Streamed execution runs only on tapes whose discipline proof went
/// through, and the proof pins every enabled positive operand index
/// into `1..=n` — evaluated in wrapping `i64` arithmetic that the
/// proof's `i64`-fit check showed agrees with the true affine value.
/// With `base = array * cells_per_array` and `n <= cells_per_array`,
/// the slot is in bounds, so the access skips the per-instance bounds
/// check; debug builds re-assert it.
#[inline(always)]
fn load_at(vals: &[i64], base: usize, idx: i64) -> i64 {
    if idx <= 0 {
        0
    } else {
        let slot = base + (idx - 1) as usize;
        debug_assert!(
            slot < vals.len(),
            "discipline proof pinned reads into bounds"
        );
        // SAFETY: see above — the compile-time proof bounds every
        // enabled read index.
        unsafe { *vals.get_unchecked(slot) }
    }
}

/// Write cell `idx` (proved to be in `1..=n`) of the array at `base`.
/// Same proof obligation as [`load_at`].
#[inline(always)]
fn store_at(vals: &mut [i64], base: usize, idx: i64, v: i64) {
    let slot = base + (idx - 1) as usize;
    debug_assert!(idx >= 1, "discipline proof pinned writes positive");
    debug_assert!(
        slot < vals.len(),
        "discipline proof pinned writes into bounds"
    );
    // SAFETY: see above — the compile-time proof bounds every enabled
    // write index.
    unsafe { *vals.get_unchecked_mut(slot) = v }
}

#[inline(always)]
fn lane_load(vals: &[i64], s: Lane, t: i64) -> i64 {
    load_at(vals, s.base, s.adv.wrapping_mul(t).wrapping_add(s.c))
}

/// The monomorphic core of a singleton stream: `count` instances of one
/// instruction, sources gathered into a fixed-arity array, the op
/// supplied as a closure so its variant match folds away after
/// inlining. Indices run as counters (one add per step).
#[inline(never)]
fn stream_loop<const A: usize, F: Fn(&[i64; A], i64) -> i64>(
    vals: &mut [i64],
    dest: Lane,
    srcs: &[Lane; A],
    t0: u64,
    count: u64,
    f: F,
) {
    let at = |s: &Lane| s.adv.wrapping_mul(t0 as i64).wrapping_add(s.c);
    let mut di = at(&dest);
    let mut idx = [0i64; A];
    for (v, s) in idx.iter_mut().zip(srcs.iter()) {
        *v = at(s);
    }
    for _ in 0..count {
        let mut ins = [0i64; A];
        for k in 0..A {
            ins[k] = load_at(vals, srcs[k].base, idx[k]);
            idx[k] = idx[k].wrapping_add(srcs[k].adv);
        }
        store_at(vals, dest.base, di, f(&ins, di));
        di = di.wrapping_add(dest.adv);
    }
}

/// Dispatch [`stream_loop`] on the op variant. Each arm rebuilds the
/// variant from its payload inside the closure, so after inlining the
/// `eval` match is on a literal discriminant and constant-folds: the
/// loop body is just the gathers and the one or two ALU ops of the
/// variant itself.
/// A first-order self-recurrence `A[f(t)] = op(A[f(t-1)])` — the shape
/// of delay lines and one-pole filters. The loop-carried value lives in
/// a register instead of bouncing through a store-to-load forward each
/// step, so the chain collapses to the op's ALU latency.
#[inline(never)]
fn carry_loop<F: Fn(&[i64; 1], i64) -> i64>(
    vals: &mut [i64],
    dest: Lane,
    t0: u64,
    count: u64,
    mut carry: i64,
    f: F,
) {
    let mut di = dest.adv.wrapping_mul(t0 as i64).wrapping_add(dest.c);
    for _ in 0..count {
        carry = f(&[carry], di);
        store_at(vals, dest.base, di, carry);
        di = di.wrapping_add(dest.adv);
    }
}

#[inline(always)]
fn carry_op(vals: &mut [i64], op: OpKind, dest: Lane, t0: u64, count: u64, carry: i64) {
    use OpKind::*;
    match op {
        Add(c) => carry_loop(vals, dest, t0, count, carry, move |ins, i| {
            Add(c).eval(ins, i)
        }),
        Sub(c) => carry_loop(vals, dest, t0, count, carry, move |ins, i| {
            Sub(c).eval(ins, i)
        }),
        Mul(c) => carry_loop(vals, dest, t0, count, carry, move |ins, i| {
            Mul(c).eval(ins, i)
        }),
        Mac(c) => carry_loop(vals, dest, t0, count, carry, move |ins, i| {
            Mac(c).eval(ins, i)
        }),
        Scale(k, c) => carry_loop(vals, dest, t0, count, carry, move |ins, i| {
            Scale(k, c).eval(ins, i)
        }),
        ScaledMul(k, c) => carry_loop(vals, dest, t0, count, carry, move |ins, i| {
            ScaledMul(k, c).eval(ins, i)
        }),
        Input(c) => carry_loop(vals, dest, t0, count, carry, move |ins, i| {
            Input(c).eval(ins, i)
        }),
    }
}

#[inline(always)]
fn stream_op<const A: usize>(
    vals: &mut [i64],
    op: OpKind,
    dest: Lane,
    srcs: &[Lane; A],
    t0: u64,
    count: u64,
) {
    use OpKind::*;
    match op {
        Add(c) => stream_loop(vals, dest, srcs, t0, count, move |ins, i| {
            Add(c).eval(ins, i)
        }),
        Sub(c) => stream_loop(vals, dest, srcs, t0, count, move |ins, i| {
            Sub(c).eval(ins, i)
        }),
        Mul(c) => stream_loop(vals, dest, srcs, t0, count, move |ins, i| {
            Mul(c).eval(ins, i)
        }),
        Mac(c) => stream_loop(vals, dest, srcs, t0, count, move |ins, i| {
            Mac(c).eval(ins, i)
        }),
        Scale(k, c) => stream_loop(vals, dest, srcs, t0, count, move |ins, i| {
            Scale(k, c).eval(ins, i)
        }),
        ScaledMul(k, c) => stream_loop(vals, dest, srcs, t0, count, move |ins, i| {
            ScaledMul(k, c).eval(ins, i)
        }),
        Input(c) => stream_loop(vals, dest, srcs, t0, count, move |ins, i| {
            Input(c).eval(ins, i)
        }),
    }
}

impl Tape {
    fn site(&self, node: u32, i: i64) -> Site {
        Site {
            node: self.arrays[node as usize].clone(),
            iteration: i,
        }
    }

    fn src_slots(&self, inst: &TapeInst) -> &[Slot] {
        let (start, len) = inst.srcs;
        &self.srcs[start as usize..(start + len) as usize]
    }

    fn extract(&self, vals: &[i64]) -> Vec<Vec<i64>> {
        let n = self.n as usize;
        (0..self.arrays.len())
            .map(|a| {
                let base = a * self.cells_per_array;
                vals[base..base + n].to_vec()
            })
            .collect()
    }

    /// One instance with no discipline checks — only legal on a tape
    /// whose compile-time proof went through.
    #[inline]
    fn step_unchecked(&self, vals: &mut [i64], inputs: &mut Vec<i64>, inst: &TapeInst, i: i64) {
        let dest_idx = inst.dest.scale * i + inst.dest.offset;
        inputs.clear();
        for s in self.src_slots(inst) {
            let idx = s.scale * i + s.offset;
            inputs.push(if idx <= 0 {
                0 // initial conditions, e.g. E[-3]
            } else {
                vals[s.base + (idx - 1) as usize]
            });
        }
        vals[inst.dest.base + (dest_idx - 1) as usize] = inst.op.eval(inputs, dest_idx);
    }

    /// An affine operand as a [`Lane`]: cell index at iteration index
    /// `t` is `scale * (lo + step * t) + offset = adv * t + c`.
    fn lane(&self, s: &Slot, b: &BodyChunk) -> Lane {
        Lane {
            base: s.base,
            adv: s.scale.wrapping_mul(b.step),
            c: s.scale.wrapping_mul(b.lo).wrapping_add(s.offset),
        }
    }

    /// One singleton dependence component: run `inst` across its whole
    /// enabled interval as a single tight loop. Every operand index is
    /// affine in the iteration index, so each advances by a constant per
    /// step; the arity match picks a fixed-size gather and
    /// [`stream_op`] monomorphizes the loop per op variant, so both the
    /// slot arithmetic and the op dispatch hoist out of it. Wrapping
    /// adds agree with the direct `scale * i + offset` evaluation modulo
    /// 2^64, and the discipline proof pinned every enabled index into
    /// `i64`, so the values match the iteration-major loop exactly.
    fn stream_one(&self, vals: &mut [i64], inst: &TapeInst, b: &BodyChunk) {
        let (t0, t1) = window_of(inst, b.trip);
        if t0 > t1 {
            return;
        }
        let dest = self.lane(&inst.dest, b);
        let count = t1 - t0 + 1;
        match self.src_slots(inst) {
            [] => stream_op(vals, inst.op, dest, &[], t0, count),
            [a] => {
                let al = self.lane(a, b);
                // Source reads this instruction's own previous instance
                // (`idx_src(t) = idx_dest(t-1)`): a first-order
                // recurrence whose carried value can live in a register.
                // For `t > t0` the read hits a cell this loop just wrote
                // (single assignment makes the dest run exclusively
                // ours); the `t0` read is whatever memory holds.
                if al.base == dest.base
                    && al.adv == dest.adv
                    && al.c == dest.c.wrapping_sub(dest.adv)
                {
                    let carry = lane_load(vals, al, t0 as i64);
                    carry_op(vals, inst.op, dest, t0, count, carry);
                } else {
                    stream_op(vals, inst.op, dest, &[al], t0, count)
                }
            }
            [a, c] => stream_op(
                vals,
                inst.op,
                dest,
                &[self.lane(a, b), self.lane(c, b)],
                t0,
                count,
            ),
            [a, c, e] => stream_op(
                vals,
                inst.op,
                dest,
                &[self.lane(a, b), self.lane(c, b), self.lane(e, b)],
                t0,
                count,
            ),
            srcs => {
                // Rare wide-arity fallback: dynamic gather, op match in
                // the loop.
                let lanes: Vec<Lane> = srcs.iter().map(|s| self.lane(s, b)).collect();
                let mut inputs = vec![0i64; srcs.len()];
                for t in t0..=t1 {
                    let ti = t as i64;
                    for (v, s) in inputs.iter_mut().zip(lanes.iter()) {
                        *v = lane_load(vals, *s, ti);
                    }
                    let di = dest.adv.wrapping_mul(ti).wrapping_add(dest.c);
                    store_at(vals, dest.base, di, inst.op.eval(&inputs, di));
                }
            }
        }
    }

    /// A recurrence component (more than one instruction in a dependence
    /// cycle): iteration-major over the members, split into segments of
    /// constant membership. Member windows partition `[lo_t, hi_t]` at
    /// their endpoints; within a segment the active set is fixed, so the
    /// inner loop carries no window compares and no disabled members.
    /// Operand indices are computed in multiplication form
    /// (`adv * t + c`) from read-only [`Lane`]s — no per-member counter
    /// stores — which the proof showed equals the true affine index for
    /// every enabled instance.
    fn run_group(
        &self,
        vals: &mut [i64],
        inputs: &mut Vec<i64>,
        insts: &[TapeInst],
        group: &[u32],
        b: &BodyChunk,
    ) {
        enum Srcs {
            N0,
            N1([Lane; 1]),
            N2([Lane; 2]),
            N3([Lane; 3]),
            Nn(Vec<Lane>),
        }
        struct Member {
            t0: u64,
            t1: u64,
            op: OpKind,
            dest: Lane,
            srcs: Srcs,
        }

        let mut members: Vec<Member> = Vec::with_capacity(group.len());
        // Segment boundaries: each member window contributes its start
        // and one-past-its-end.
        let mut cuts: Vec<u64> = Vec::with_capacity(2 * group.len());
        for &j in group {
            let inst = &insts[j as usize];
            let (t0, t1) = window_of(inst, b.trip);
            if t0 > t1 {
                continue;
            }
            cuts.push(t0);
            cuts.push(t1 + 1);
            let mut ss = self.src_slots(inst).iter().map(|s| self.lane(s, b));
            let mut next = || ss.next().expect("arity-checked");
            let srcs = match self.src_slots(inst).len() {
                0 => Srcs::N0,
                1 => Srcs::N1([next()]),
                2 => Srcs::N2([next(), next()]),
                3 => Srcs::N3([next(), next(), next()]),
                _ => Srcs::Nn(ss.collect()),
            };
            members.push(Member {
                t0,
                t1,
                op: inst.op,
                dest: self.lane(&inst.dest, b),
                srcs,
            });
        }
        cuts.sort_unstable();
        cuts.dedup();
        #[inline(always)]
        fn step_member(vals: &mut [i64], inputs: &mut Vec<i64>, m: &Member, ti: i64) {
            let di = m.dest.adv.wrapping_mul(ti).wrapping_add(m.dest.c);
            let v = match &m.srcs {
                Srcs::N0 => m.op.eval(&[], di),
                Srcs::N1([a]) => m.op.eval(&[lane_load(vals, *a, ti)], di),
                Srcs::N2([a, c]) => {
                    m.op.eval(&[lane_load(vals, *a, ti), lane_load(vals, *c, ti)], di)
                }
                Srcs::N3([a, c, e]) => m.op.eval(
                    &[
                        lane_load(vals, *a, ti),
                        lane_load(vals, *c, ti),
                        lane_load(vals, *e, ti),
                    ],
                    di,
                ),
                Srcs::Nn(ss) => {
                    inputs.clear();
                    for s in ss.iter() {
                        inputs.push(lane_load(vals, *s, ti));
                    }
                    m.op.eval(inputs, di)
                }
            };
            store_at(vals, m.dest.base, di, v);
        }

        let mut active: Vec<usize> = Vec::with_capacity(members.len());
        for seg in cuts.windows(2) {
            let (s, e) = (seg[0], seg[1]);
            active.clear();
            active.extend(
                members
                    .iter()
                    .enumerate()
                    // No window endpoint lies inside (s, e), so covering
                    // `s` means covering the whole segment.
                    .filter(|(_, m)| m.t0 <= s && s <= m.t1)
                    .map(|(k, _)| k),
            );
            if active.is_empty() {
                continue;
            }
            if active.len() == members.len() {
                // Every member enabled — the common case (uniform
                // windows): walk the member slice with no indirection.
                for t in s..e {
                    let ti = t as i64;
                    for m in &members {
                        step_member(vals, inputs, m, ti);
                    }
                }
            } else {
                for t in s..e {
                    let ti = t as i64;
                    for &k in &active {
                        step_member(vals, inputs, &members[k], ti);
                    }
                }
            }
        }
    }

    /// Instruction-major execution for preverified tapes with a
    /// dependence plan, taken when the `vm.exec` fail-point is unarmed
    /// (an unarmed `hit` is observably a no-op, so the per-iteration
    /// probes may be skipped wholesale; arming the site falls back to
    /// [`Tape::execute_unchecked`], which probes every iteration).
    fn execute_streamed(&self, plan: &[Vec<u32>]) -> Result<ExecResult, ExecError> {
        let total = self.arrays.len() * self.cells_per_array;
        let mut vals = vec![0i64; total];
        let mut inputs: Vec<i64> = Vec::with_capacity(self.max_srcs);
        for inst in &self.insts[self.pre.insts.clone()] {
            self.step_unchecked(&mut vals, &mut inputs, inst, 0);
        }
        if let Some(b) = &self.body {
            if b.trip > 0 {
                let insts = &self.insts[b.insts.clone()];
                for group in plan {
                    if let &[j] = group.as_slice() {
                        self.stream_one(&mut vals, &insts[j as usize], b);
                    } else {
                        self.run_group(&mut vals, &mut inputs, insts, group, b);
                    }
                }
            }
        }
        for inst in &self.insts[self.post.insts.clone()] {
            self.step_unchecked(&mut vals, &mut inputs, inst, 0);
        }
        Ok(ExecResult {
            arrays: self.extract(&vals),
            computes_executed: self.executed,
            computes_nullified: self.nullified,
        })
    }

    /// The fast loop for preverified tapes: gather, evaluate, store.
    /// No written-bitset, no range checks, no completeness scan — the
    /// proof already ruled every fault out. Identical results to the
    /// checked loop because values, guard predicates, and counts are
    /// all the same computation.
    fn execute_unchecked(&self) -> Result<ExecResult, ExecError> {
        let total = self.arrays.len() * self.cells_per_array;
        let mut vals = vec![0i64; total];
        let mut inputs: Vec<i64> = Vec::with_capacity(self.max_srcs);
        for inst in &self.insts[self.pre.insts.clone()] {
            self.step_unchecked(&mut vals, &mut inputs, inst, 0);
        }
        if let Some(b) = &self.body {
            let insts = &self.insts[b.insts.clone()];
            let mut i = b.lo;
            for t in 0..b.trip {
                failpoint::hit(failpoint::sites::VM_EXEC)
                    .map_err(|e| ExecError::Injected { site: e.site })?;
                let (tw, tb) = ((t >> 6) as usize, t & 63);
                for inst in insts {
                    match inst.enable {
                        Enable::Always => {}
                        Enable::Bits(off) => {
                            if (self.guard_words[off + tw] >> tb) & 1 == 0 {
                                continue;
                            }
                        }
                        Enable::Window(t0, t1) => {
                            if t < t0 || t > t1 {
                                continue;
                            }
                        }
                    }
                    self.step_unchecked(&mut vals, &mut inputs, inst, i);
                }
                i += b.step;
            }
        }
        for inst in &self.insts[self.post.insts.clone()] {
            self.step_unchecked(&mut vals, &mut inputs, inst, 0);
        }
        Ok(ExecResult {
            arrays: self.extract(&vals),
            computes_executed: self.executed,
            computes_nullified: self.nullified,
        })
    }

    /// Execute the tape. Same result, same faults, same fault order as
    /// [`execute`](crate::execute) on the program this was compiled from.
    pub fn execute(&self) -> Result<ExecResult, ExecError> {
        if self.clean {
            if let Some(plan) = &self.plan {
                if !failpoint::armed(failpoint::sites::VM_EXEC) {
                    return self.execute_streamed(plan);
                }
            }
            return self.execute_unchecked();
        }
        let total = self.arrays.len() * self.cells_per_array;
        let mut run = Run {
            vals: vec![0; total],
            written: vec![0; total / 64],
            inputs: Vec::with_capacity(self.max_srcs),
        };
        for inst in &self.insts[self.pre.insts.clone()] {
            run.step(self, inst, 0)?;
        }
        if let Some(e) = &self.pre.fault {
            return Err(e.clone());
        }
        if let Some(b) = &self.body {
            let insts = &self.insts[b.insts.clone()];
            let mut i = b.lo;
            for t in 0..b.trip {
                failpoint::hit(failpoint::sites::VM_EXEC)
                    .map_err(|e| ExecError::Injected { site: e.site })?;
                if let Some((ft, pos, err)) = &b.fault {
                    if t == *ft {
                        for inst in &insts[..*pos] {
                            run.step_enabled(self, inst, t, i)?;
                        }
                        return Err(err.clone());
                    }
                }
                for inst in insts {
                    run.step_enabled(self, inst, t, i)?;
                }
                i += b.step;
            }
        }
        for inst in &self.insts[self.post.insts.clone()] {
            run.step(self, inst, 0)?;
        }
        if let Some(e) = &self.post.fault {
            return Err(e.clone());
        }
        // Completeness: every element of 1..=n written exactly once
        // (double writes were already rejected). Arrays are word-aligned
        // in the written-bitset, so this is a word scan.
        let n = self.n as usize;
        for (a, name) in self.arrays.iter().enumerate() {
            let base_word = a * self.cells_per_array / 64;
            let full = n / 64;
            let missing = (0..full)
                .find_map(|w| {
                    let word = run.written[base_word + w];
                    (word != u64::MAX).then(|| w * 64 + word.trailing_ones() as usize)
                })
                .or_else(|| {
                    let rem = n % 64;
                    (rem > 0)
                        .then(|| {
                            let word = run.written[base_word + full];
                            full * 64 + word.trailing_ones() as usize
                        })
                        .filter(|&idx| idx < n)
                });
            if let Some(idx) = missing {
                return Err(ExecError::Incomplete {
                    array: name.clone(),
                    index: idx as i64 + 1,
                });
            }
        }
        Ok(ExecResult {
            arrays: self.extract(&run.vals),
            computes_executed: self.executed,
            computes_nullified: self.nullified,
        })
    }
}

/// [`compile`] then [`Tape::execute`] — the drop-in fast path for
/// [`execute`](crate::execute).
pub fn execute_tape(p: &LoopProgram) -> Result<ExecResult, ExecError> {
    compile(p)?.execute()
}

/// [`diff_against_reference`](crate::diff_against_reference) on the tape
/// path: execute `p` through the compiler and compare every element with
/// the direct recurrence evaluation of `g`.
pub fn diff_against_reference_tape(g: &Dfg, p: &LoopProgram) -> Result<ExecResult, DiffReport> {
    assert_eq!(
        g.node_count(),
        p.arrays.len(),
        "program must cover exactly the DFG's value streams"
    );
    let res = execute_tape(p).map_err(DiffReport::Exec)?;
    let reference = g.reference_execution(p.n as usize);
    let cells = crate::machine::value_diff(g, p.n as usize, &res.arrays, &reference);
    if !cells.is_empty() {
        return Err(DiffReport::Values { cells });
    }
    debug_assert_eq!(
        res.computes_executed,
        g.node_count() as u64 * p.n,
        "every node must execute exactly n times"
    );
    Ok(res)
}

/// Compare the tree-walker and the tape executor on one program,
/// bit-for-bit: identical results on success, identical errors on
/// failure. `Err` carries a rendered divergence — any divergence is a
/// compiler bug.
pub fn cross_check_executors(p: &LoopProgram) -> Result<(), String> {
    let tree = crate::machine::execute(p);
    let tape = execute_tape(p);
    match (&tree, &tape) {
        (Ok(a), Ok(b)) => {
            if a.arrays != b.arrays {
                return Err(format!(
                    "value divergence: tree {:?}, tape {:?}",
                    a.arrays, b.arrays
                ));
            }
            if (a.computes_executed, a.computes_nullified)
                != (b.computes_executed, b.computes_nullified)
            {
                return Err(format!(
                    "count divergence: tree {}/{}, tape {}/{}",
                    a.computes_executed,
                    a.computes_nullified,
                    b.computes_executed,
                    b.computes_nullified
                ));
            }
            Ok(())
        }
        (Err(a), Err(b)) if a == b => Ok(()),
        _ => Err(format!(
            "outcome divergence: tree {:?}, tape {:?}",
            tree.as_ref()
                .map(|r| (r.computes_executed, r.computes_nullified)),
            tape.as_ref()
                .map(|r| (r.computes_executed, r.computes_nullified)),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::execute;
    use cred_codegen::cred::cred_pipelined;
    use cred_codegen::ir::{LoopSpec, PredId, Ref};
    use cred_codegen::pipeline::{original_program, pipelined_program};
    use cred_dfg::{DfgBuilder, OpKind};
    use cred_retime::Retiming;

    fn tiny() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(1));
        let c = b.node("B", 1, OpKind::Mul(0));
        b.edge(a, c, 0);
        b.edge(c, a, 2);
        b.build().unwrap()
    }

    fn figure3() -> (Dfg, Retiming) {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(9));
        let bb = b.node("B", 1, OpKind::Mul(5));
        let c = b.node("C", 1, OpKind::Add(0));
        let d = b.node("D", 1, OpKind::Mul(0));
        let e = b.node("E", 1, OpKind::Add(30));
        b.edge(e, a, 4);
        b.edge(a, bb, 0);
        b.edge(a, c, 0);
        b.edge(bb, c, 2);
        b.edge(a, d, 0);
        b.edge(c, d, 0);
        b.edge(d, e, 0);
        (
            b.build().unwrap(),
            Retiming::from_values(vec![3, 2, 2, 1, 0]),
        )
    }

    #[test]
    fn tape_matches_tree_on_generated_programs() {
        let g = tiny();
        for n in [0u64, 1, 2, 5, 17] {
            cross_check_executors(&original_program(&g, n)).unwrap();
        }
        let (g, r) = figure3();
        for n in [0u64, 1, 3, 10, 40] {
            cross_check_executors(&pipelined_program(&g, &r, n)).unwrap();
            cross_check_executors(&cred_pipelined(&g, &r, n)).unwrap();
        }
    }

    #[test]
    fn guard_predicates_match_trace_windows() {
        // Same program as machine::tests::guard_window_semantics: the
        // guard opens exactly iterations {2, 3}, so both executors must
        // report the identical Incomplete fault.
        let mk = |offset| LoopProgram {
            name: "t".into(),
            n: 5,
            arrays: vec!["A".into()],
            pre: vec![Inst::Setup {
                reg: PredId(0),
                init: 1,
                bound: -2,
            }],
            body: Some(LoopSpec {
                lo: 1,
                hi: 5,
                step: 1,
                body: vec![
                    Inst::Compute {
                        guard: Some(Guard {
                            reg: PredId(0),
                            offset,
                        }),
                        dest: Ref {
                            array: 0,
                            index: Index::i_plus(0),
                        },
                        op: OpKind::Input(0),
                        srcs: vec![],
                    },
                    Inst::Dec {
                        reg: PredId(0),
                        by: 1,
                    },
                ],
                auto_dec: None,
            }),
            post: vec![],
        };
        for offset in [0, 1, -1] {
            let p = mk(offset);
            cross_check_executors(&p).unwrap();
            assert!(matches!(
                execute_tape(&p),
                Err(ExecError::Incomplete { .. })
            ));
        }
    }

    #[test]
    fn faults_surface_identically() {
        let g = tiny();
        // Double write: duplicate the body.
        let mut p = original_program(&g, 3);
        let body = p.body.as_mut().unwrap();
        let dup = body.body.clone();
        body.body.extend(dup);
        cross_check_executors(&p).unwrap();
        // Out-of-range write: run one iteration too many.
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().hi = 4;
        cross_check_executors(&p).unwrap();
        // Use-before-def: reverse the body.
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().body.reverse();
        cross_check_executors(&p).unwrap();
        // Invalid loop: non-positive step.
        for step in [0, -1] {
            let mut p = original_program(&g, 3);
            p.body.as_mut().unwrap().step = step;
            cross_check_executors(&p).unwrap();
            assert!(matches!(execute_tape(&p), Err(ExecError::InvalidLoop(_))));
        }
        // Unbound register: Dec of a never-setup register in the body.
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().body.push(Inst::Dec {
            reg: PredId(9),
            by: 1,
        });
        cross_check_executors(&p).unwrap();
        assert_eq!(execute_tape(&p).unwrap_err(), execute(&p).unwrap_err());
        // Incomplete: drop an instance.
        let mut p = original_program(&g, 2);
        p.body.as_mut().unwrap().body.pop();
        cross_check_executors(&p).unwrap();
    }

    #[test]
    fn unbound_guard_in_pre_and_post() {
        let g = tiny();
        let guarded = Inst::Compute {
            guard: Some(Guard {
                reg: PredId(3),
                offset: 0,
            }),
            dest: Ref {
                array: 0,
                index: Index::Const(1),
            },
            op: OpKind::Input(0),
            srcs: vec![],
        };
        let mut p = original_program(&g, 3);
        p.pre.insert(0, guarded.clone());
        cross_check_executors(&p).unwrap();
        let mut p = original_program(&g, 3);
        p.post.push(guarded);
        cross_check_executors(&p).unwrap();
    }

    #[test]
    fn diff_compiled_matches_tree_diff() {
        let (g, r) = figure3();
        let p = cred_pipelined(&g, &r, 10);
        let a = crate::machine::diff_against_reference(&g, &p).unwrap();
        let b = diff_against_reference_tape(&g, &p).unwrap();
        assert_eq!(a.arrays, b.arrays);
        assert_eq!(a.computes_executed, b.computes_executed);
        assert_eq!(a.computes_nullified, b.computes_nullified);
        // And on a corrupted program, the same structured report.
        let mut bad = cred_pipelined(&g, &r, 10);
        if let Some(l) = &mut bad.body {
            if let Inst::Compute { op, .. } = &mut l.body[0] {
                *op = OpKind::Add(2);
            }
        }
        assert_eq!(
            crate::machine::diff_against_reference(&g, &bad).unwrap_err(),
            diff_against_reference_tape(&g, &bad).unwrap_err()
        );
    }

    #[test]
    fn discipline_proof_engages_on_generated_programs() {
        // The unchecked fast loop only pays off if generated programs
        // actually preverify; a silent fall-back to the checked loop
        // would be a performance regression this test catches.
        let g = tiny();
        assert!(compile(&original_program(&g, 17)).unwrap().preverified());
        let (g, r) = figure3();
        for n in [1u64, 10, 40] {
            assert!(compile(&pipelined_program(&g, &r, n))
                .unwrap()
                .preverified());
            assert!(compile(&cred_pipelined(&g, &r, n)).unwrap().preverified());
        }
        // And never on programs with real faults.
        let mut bad = original_program(&g, 3);
        bad.body.as_mut().unwrap().body.reverse();
        assert!(!compile(&bad).unwrap().preverified());
        let mut bad = original_program(&g, 3);
        let dup = bad.body.as_ref().unwrap().body.clone();
        bad.body.as_mut().unwrap().body.extend(dup);
        assert!(!compile(&bad).unwrap().preverified());
    }

    #[test]
    fn dynamic_counts_are_precomputed_exactly() {
        let (g, r) = figure3();
        let p = cred_pipelined(&g, &r, 10);
        let tape = compile(&p).unwrap();
        let res = tape.execute().unwrap();
        let tree = execute(&p).unwrap();
        assert_eq!(res.computes_executed, tree.computes_executed);
        assert_eq!(res.computes_nullified, tree.computes_nullified);
        assert_eq!(res.computes_executed, 5 * 10);
    }
}
