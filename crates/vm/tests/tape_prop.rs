//! The tape compiler as part of the oracle: on fuzzed cases, the
//! preresolved tape executor must be indistinguishable from the
//! tree-walking reference — `execute_tape == execute` on every program
//! the verification pipeline generates, and still indistinguishable
//! after seeded mutations drive the programs into every fault path.

use cred_codegen::ir::PredId;
use cred_codegen::{Guard, Index, Inst, LoopProgram};
use cred_dfg::OpKind;
use cred_verify::{case_programs, random_case, CaseConfig};
use cred_vm::{cross_check_executors, diff_against_reference, diff_against_reference_tape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean path: every program of a fuzzed case runs bit-identically
    /// on both executors (same values, same dynamic counts).
    #[test]
    fn execute_tape_equals_execute(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let case = random_case(&mut rng, format!("tape-{seed}"), &CaseConfig::default());
        for p in case_programs(&case) {
            if let Err(divergence) = cross_check_executors(&p) {
                return Err(TestCaseError::Fail(format!("{case}: {}: {divergence}", p.name)));
            }
        }
    }

    /// Fault paths: mutate each generated program into (usually) broken
    /// shapes covering every `ExecError` variant; both executors must
    /// report the *same* error at the *same* site, or the same success.
    #[test]
    fn executors_agree_on_mutated_programs(seed in any::<u64>(), knob in 0..8usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let case = random_case(&mut rng, format!("mut-{seed}"), &CaseConfig::default());
        for mut p in case_programs(&case) {
            mutate(&mut p, knob);
            if let Err(divergence) = cross_check_executors(&p) {
                return Err(TestCaseError::Fail(
                    format!("{case}: {} knob {knob}: {divergence}", p.name),
                ));
            }
        }
    }
}

/// Deterministic program corruptions, one per knob value. Each targets a
/// distinct executor code path (value corruption, guard windows, loop
/// bounds, ordering, register binding, write discipline, completeness,
/// loop validation).
fn mutate(p: &mut LoopProgram, knob: usize) {
    let Some(l) = &mut p.body else {
        return;
    };
    match knob {
        // Corrupt the first compute's op: a pure value diff, no fault.
        0 => {
            for inst in &mut l.body {
                if let Inst::Compute { op, .. } = inst {
                    *op = OpKind::Add(1000);
                    return;
                }
            }
        }
        // Shift the first guard window: mis-masked prologue/epilogue.
        1 => {
            for inst in &mut l.body {
                if let Inst::Compute { guard: Some(g), .. } = inst {
                    g.offset += 1;
                    return;
                }
            }
        }
        // Run one iteration too many: out-of-range writes.
        2 => l.hi += l.step,
        // Reverse the schedule: use-before-def.
        3 => l.body.reverse(),
        // Decrement a register nothing ever set up.
        4 => l.body.push(Inst::Dec {
            reg: PredId(97),
            by: 1,
        }),
        // Duplicate the whole body: double writes.
        5 => {
            let dup = l.body.clone();
            l.body.extend(dup);
        }
        // Drop the last instruction: incompleteness (or a read fault).
        6 => {
            l.body.pop();
        }
        // Break the loop structure itself.
        _ => l.step = 0,
    }
}

/// The structured diff reports (the oracle's layer-2 evidence) are also
/// identical between the two paths, on clean and corrupted programs.
#[test]
fn diff_reports_are_identical_across_executors() {
    let mut rng = StdRng::seed_from_u64(2002);
    for i in 0..12 {
        let case = random_case(&mut rng, format!("diff-{i}"), &CaseConfig::default());
        for mut p in case_programs(&case) {
            match (
                diff_against_reference(&case.graph, &p),
                diff_against_reference_tape(&case.graph, &p),
            ) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.arrays, b.arrays, "{case}: {}", p.name);
                    assert_eq!(a.computes_executed, b.computes_executed);
                    assert_eq!(a.computes_nullified, b.computes_nullified);
                }
                (tree, tape) => panic!(
                    "{case}: {}: clean program rejected (tree {:?}, tape {:?})",
                    p.name,
                    tree.err(),
                    tape.err()
                ),
            }
            // Corrupt and compare the failure reports byte for byte.
            mutate(&mut p, i % 8);
            let tree = diff_against_reference(&case.graph, &p);
            let tape = diff_against_reference_tape(&case.graph, &p);
            match (tree, tape) {
                (Ok(_), Ok(_)) => {} // mutation happened to be harmless
                (Err(a), Err(b)) => assert_eq!(a, b, "{case}: {}", p.name),
                (a, b) => panic!(
                    "{case}: {}: outcome divergence (tree ok={}, tape ok={})",
                    p.name,
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}

/// A guarded instruction whose register is bound mid-loop (setup inside
/// the body) exercises the compile-time simulation's iteration order.
#[test]
fn mid_loop_setup_window_matches() {
    use cred_codegen::ir::{LoopSpec, Ref};
    let p = LoopProgram {
        name: "mid-setup".into(),
        n: 6,
        arrays: vec!["A".into()],
        pre: vec![],
        body: Some(LoopSpec {
            lo: 1,
            hi: 6,
            step: 1,
            body: vec![
                Inst::Setup {
                    reg: PredId(0),
                    init: 2,
                    bound: -4,
                },
                Inst::Compute {
                    guard: Some(Guard {
                        reg: PredId(0),
                        offset: 2,
                    }),
                    dest: Ref {
                        array: 0,
                        index: Index::i_plus(0),
                    },
                    op: OpKind::Input(3),
                    srcs: vec![],
                },
            ],
            auto_dec: Some(1),
        }),
        post: vec![],
    };
    cross_check_executors(&p).unwrap();
}
