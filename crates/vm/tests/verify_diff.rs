//! The VM as seen by the differential verifier: structured diff reports
//! and fault sites must be rich enough for `cred-verify` to localize a
//! failure without re-running anything.

use cred_codegen::pipeline::original_program;
use cred_codegen::{Index, Inst, Ref};
use cred_dfg::{gen, OpKind};
use cred_verify::{random_case, verify_case, CaseConfig};
use cred_vm::{diff_against_reference, DiffReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random pipelines end-to-end through the oracle: every VM strictness
/// rule (single-write, use-before-def, range checks) holds on generated
/// code across both transformation orders.
#[test]
fn random_pipelines_execute_clean_under_strict_semantics() {
    let mut rng = StdRng::seed_from_u64(11);
    let cfg = CaseConfig::default();
    for i in 0..40 {
        let c = random_case(&mut rng, format!("vm{i}"), &cfg);
        verify_case(&c).unwrap_or_else(|e| panic!("{c}: {e}"));
    }
}

/// A corrupted program yields a value-level diff naming every bad cell,
/// not a bare error.
#[test]
fn diff_report_lists_every_corrupted_cell() {
    let g = gen::chain_with_feedback(3, 1);
    let mut p = original_program(&g, 6);
    // Skew the last node's op so iterations 1..=6 of that array all differ.
    let body = &mut p.body.as_mut().expect("loop body").body;
    for inst in body.iter_mut() {
        if let Inst::Compute { dest, op, .. } = inst {
            if dest.array == g.node_count() as u32 - 1 {
                *op = OpKind::Add(1000);
            }
        }
    }
    let last = &g.node(g.node_ids().last().unwrap()).name;
    match diff_against_reference(&g, &p) {
        Err(DiffReport::Values { cells }) => {
            // The skewed node is wrong at every iteration, and (via the
            // feedback edge) the corruption spreads to the other arrays —
            // the report lists them all, not just the first.
            let direct: Vec<_> = cells.iter().filter(|c| &c.array == last).collect();
            assert_eq!(direct.len(), 6, "one direct mismatch per iteration");
            assert!(cells.len() > 6, "feedback propagation must be reported");
            // Cells are reported in iteration order with both values.
            assert_eq!(direct[0].index, 1);
            assert!(direct.windows(2).all(|w| w[0].index < w[1].index));
            assert!(direct.iter().all(|c| c.got != c.expected));
        }
        other => panic!("expected a value diff, got {other:?}"),
    }
}

/// Execution faults carry the `(node, iteration)` site through Display.
#[test]
fn fault_sites_are_human_readable() {
    let g = gen::chain_with_feedback(2, 1);
    let mut p = original_program(&g, 4);
    p.post.push(Inst::Compute {
        guard: None,
        dest: Ref {
            array: 0,
            index: Index::Const(2),
        },
        op: OpKind::Add(0),
        srcs: vec![],
    });
    let err = diff_against_reference(&g, &p).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("double write") && msg.contains("i = 0"),
        "diagnostic should carry the fault site: {msg}"
    );
}
