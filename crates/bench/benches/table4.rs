//! Criterion bench for the Table 4 experiment: order comparison on the
//! 4-stage lattice filter across unfolding factors.

use cred_codegen::DecMode;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table4(c: &mut Criterion) {
    let g = cred_kernels::lattice_filter();
    let mut group = c.benchmark_group("table4");
    group.sample_size(20); // the f = 4 unfolded lattice is a 104-node graph
    for f in [2usize, 3, 4] {
        group.bench_function(format!("uf{f}"), |b| {
            b.iter(|| {
                black_box(cred_bench::compare_orders(
                    black_box(&g),
                    f,
                    None,
                    96,
                    DecMode::PerCopy,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
