//! Scalability bench: per-stage cost of the CRED pipeline (iteration
//! bound, W/D matrices, min-period retiming, unfolding, code generation,
//! VM execution) as the DFG grows.

use cred_codegen::cred::cred_pipelined;
use cred_codegen::DecMode;
use cred_dfg::{algo, gen};
use cred_retime::min_period_retiming;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn graphs() -> Vec<(usize, cred_dfg::Dfg)> {
    let mut rng = StdRng::seed_from_u64(2002);
    [10usize, 20, 40, 80]
        .into_iter()
        .map(|n| {
            (
                n,
                gen::random_dfg(
                    &mut rng,
                    &gen::RandomDfgConfig {
                        nodes: n,
                        forward_edge_prob: 0.15,
                        back_edges: n / 4,
                        max_delay: 3,
                        max_time: 2,
                    },
                ),
            )
        })
        .collect()
}

fn bench_stages(c: &mut Criterion) {
    let gs = graphs();

    let mut group = c.benchmark_group("iteration_bound");
    for (n, g) in &gs {
        group.bench_with_input(BenchmarkId::from_parameter(n), g, |b, g| {
            b.iter(|| black_box(algo::iteration_bound(black_box(g))));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("wd_matrices");
    for (n, g) in &gs {
        group.bench_with_input(BenchmarkId::from_parameter(n), g, |b, g| {
            b.iter(|| black_box(algo::WdMatrices::compute(black_box(g))));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("min_period_retiming");
    for (n, g) in &gs {
        group.bench_with_input(BenchmarkId::from_parameter(n), g, |b, g| {
            b.iter(|| black_box(min_period_retiming(black_box(g))));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("unfold_f4");
    for (n, g) in &gs {
        group.bench_with_input(BenchmarkId::from_parameter(n), g, |b, g| {
            b.iter(|| black_box(cred_unfold::unfold(black_box(g), 4)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cred_codegen");
    for (n, g) in &gs {
        let r = min_period_retiming(g).retiming;
        group.bench_with_input(BenchmarkId::from_parameter(n), g, |b, g| {
            b.iter(|| black_box(cred_pipelined(black_box(g), &r, 101)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("vm_execute_n1000");
    for (n, g) in &gs {
        let r = min_period_retiming(g).retiming;
        let p = cred_pipelined(g, &r, 1000);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| black_box(cred_vm::execute(black_box(p)).unwrap()));
        });
    }
    group.finish();

    let _ = DecMode::Bulk;
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
