//! Criterion bench for the VM executor pair: the tree-walking reference
//! interpreter against the preresolved instruction tape (compile +
//! execute, so the tape side pays its own lowering cost — exactly what
//! the verification oracle pays per generated program).
//!
//! The program under execution is each bundled kernel's CRED
//! retime+unfold output at f = 2 — the guard-heaviest generator, i.e.
//! the worst case for the tape's predicate-bitset precomputation.

use cred_codegen::cred::cred_retime_unfold;
use cred_codegen::{DecMode, LoopProgram};
use cred_explore::cache::compute_plan;
use cred_vm::{cross_check_executors, execute, execute_tape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const N: u64 = 512;
const F: usize = 2;

fn programs() -> Vec<(&'static str, LoopProgram)> {
    [
        ("iir", cred_kernels::iir_filter()),
        ("allpole", cred_kernels::all_pole_filter()),
        ("lattice", cred_kernels::lattice_filter()),
        ("volterra", cred_kernels::volterra_filter()),
        ("elliptic", cred_kernels::elliptic_filter()),
    ]
    .into_iter()
    .map(|(name, g)| {
        let r = compute_plan(&g, F).projected;
        (name, cred_retime_unfold(&g, &r, F, N, DecMode::Bulk))
    })
    .collect()
}

fn bench_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_tape");
    group.sample_size(10);
    for (name, p) in &programs() {
        // The pair must agree before it is worth timing.
        cross_check_executors(p).expect("executors diverge");
        group.bench_with_input(BenchmarkId::new("tree", name), p, |b, p| {
            b.iter(|| black_box(execute(p).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("tape", name), p, |b, p| {
            b.iter(|| black_box(execute_tape(p).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);
