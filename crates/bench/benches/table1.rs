//! Criterion bench for the Table 1 experiment: the cost of the full CRED
//! pipeline (rate-optimal retiming, span minimization, register
//! compaction, code generation, and VM verification) per DSP benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    for (name, g) in cred_kernels::all_benchmarks() {
        group.bench_function(name, |b| {
            b.iter(|| black_box(cred_bench::table1_row(name, black_box(&g), 101)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
