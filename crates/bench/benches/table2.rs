//! Criterion bench for the Table 2 experiment: retime-then-unfold plus
//! CRED (per-copy decrements) at `f = 3`, `n = 101`, per DSP benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    for (name, g) in cred_kernels::all_benchmarks() {
        group.bench_function(name, |b| {
            b.iter(|| black_box(cred_bench::table2_row(name, black_box(&g), 3, 101)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
