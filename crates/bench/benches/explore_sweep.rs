//! Criterion bench for the exploration engine: the serial reference
//! pipeline [`cred_explore::sweep_reference`] against the parallel,
//! memoized [`ExploreRequest`] engine on the two largest bundled kernels
//! (elliptic, 34 nodes; volterra, 27 nodes), plus the warm-cache
//! steady state a long-lived [`SweepCache`] reaches after the first sweep.

use cred_codegen::DecMode;
use cred_explore::cache::SweepCache;
use cred_explore::{sweep_reference, ExploreRequest};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const MAX_F: usize = 4;
const N: u64 = 101;

fn bench_explore_sweep(c: &mut Criterion) {
    let kernels = [
        ("elliptic", cred_kernels::elliptic_filter()),
        ("volterra", cred_kernels::volterra_filter()),
    ];
    let mut group = c.benchmark_group("explore_sweep");
    group.sample_size(10);
    for (name, g) in &kernels {
        group.bench_with_input(BenchmarkId::new("serial", name), g, |b, g| {
            b.iter(|| black_box(sweep_reference(g, MAX_F, N, DecMode::Bulk)));
        });
        for threads in [2, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel{threads}"), name),
                g,
                |b, g| {
                    b.iter(|| {
                        black_box(
                            ExploreRequest::new(g.clone())
                                .max_f(MAX_F)
                                .trip_count(N)
                                .threads(threads)
                                .run()
                                .expect("unlimited sweep"),
                        )
                    });
                },
            );
        }
        // Steady state: the cache already holds every plan, so the sweep
        // only regenerates code from the memoized retimings.
        let warm = SweepCache::new();
        let request = ExploreRequest::new(g.clone())
            .max_f(MAX_F)
            .trip_count(N)
            .threads(8);
        let _ = request.run_with(&warm).expect("warmup sweep");
        group.bench_with_input(BenchmarkId::new("warm_cache", name), &request, |b, req| {
            b.iter(|| black_box(req.run_with(&warm).expect("warm sweep")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explore_sweep);
criterion_main!(benches);
