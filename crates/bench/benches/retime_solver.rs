//! Criterion bench for the retiming solver layer: the dense reference path
//! (full `ConstraintSystem` + edge-list Bellman–Ford per probe) against the
//! warm-started incremental solver (CSR constraint graph + SPFA +
//! feasible-solution reuse across the period/span binary searches), per
//! bundled kernel size, plus the unfolding sweep on the largest kernel
//! (elliptic, 34 nodes) where the incremental side also reuses its scratch
//! arena between factors.

use cred_dfg::algo::WdMatrices;
use cred_dfg::Dfg;
use cred_retime::minperiod::min_period_retiming_reference;
use cred_retime::span::min_span_retiming_reference;
use cred_retime::{RetimeSolver, SolverScratch};
use cred_unfold::unfold;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SWEEP_MAX_F: usize = 4;

fn kernels() -> Vec<(&'static str, Dfg)> {
    vec![
        ("iir", cred_kernels::iir_filter()),
        ("allpole", cred_kernels::all_pole_filter()),
        ("lattice", cred_kernels::lattice_filter()),
        ("volterra", cred_kernels::volterra_filter()),
        ("elliptic", cred_kernels::elliptic_filter()),
    ]
}

/// Cold vs warm on a single graph: the full min-period search plus span
/// minimization at the optimum — the per-factor work of an exploration
/// sweep. W/D is precomputed outside the timed region for both sides so
/// the bench isolates the solver layer.
fn bench_single_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("retime_solver");
    group.sample_size(10);
    for (name, g) in &kernels() {
        let wd = WdMatrices::compute(g);
        group.bench_with_input(BenchmarkId::new("reference", name), g, |b, g| {
            b.iter(|| {
                let opt = min_period_retiming_reference(g, &wd);
                black_box(min_span_retiming_reference(g, &wd, opt.period).unwrap());
            });
        });
        group.bench_with_input(BenchmarkId::new("incremental", name), g, |b, g| {
            b.iter(|| {
                let mut solver = RetimeSolver::new(g, &wd);
                let opt = solver.min_period();
                black_box(solver.min_span_from_base(opt.period, &opt.retiming));
            });
        });
    }
    group.finish();
}

/// The exploration engine's inner loop on the largest kernel: solve every
/// unfolding factor 1..=SWEEP_MAX_F back to back. The incremental side
/// passes one scratch arena from factor to factor, so steady-state solves
/// allocate nothing.
fn bench_unfold_sweep(c: &mut Criterion) {
    let g = cred_kernels::elliptic_filter();
    let graphs: Vec<(Dfg, WdMatrices)> = (1..=SWEEP_MAX_F)
        .map(|f| {
            let u = unfold(&g, f).graph;
            let wd = WdMatrices::compute(&u);
            (u, wd)
        })
        .collect();
    let mut group = c.benchmark_group("retime_solver_sweep");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("reference", "elliptic"), |b| {
        b.iter(|| {
            for (u, wd) in &graphs {
                let opt = min_period_retiming_reference(u, wd);
                black_box(min_span_retiming_reference(u, wd, opt.period).unwrap());
            }
        });
    });
    group.bench_function(BenchmarkId::new("incremental", "elliptic"), |b| {
        b.iter(|| {
            let mut scratch = SolverScratch::new();
            for (u, wd) in &graphs {
                let mut solver = RetimeSolver::with_scratch(u, wd, scratch);
                let opt = solver.min_period();
                black_box(solver.min_span_from_base(opt.period, &opt.retiming));
                scratch = solver.into_scratch();
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_single_kernel, bench_unfold_sweep);
criterion_main!(benches);
