//! Ablation: decrement-placement mode (DESIGN.md). `PerCopy` costs
//! `P*(f+1)` overhead instructions and executes `f` decrements per
//! register per iteration; `Bulk` costs `2*P` but requires guards with
//! hardware copy offsets. This bench measures the *dynamic* cost
//! difference on the VM; the static sizes are printed once.

use cred_codegen::cred::cred_retime_unfold;
use cred_codegen::DecMode;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let n = 5000u64;
    let f = 4usize;
    let mut group = c.benchmark_group("decrement_mode");
    for (name, g) in cred_kernels::all_benchmarks().into_iter().take(3) {
        let (r, _) = cred_bench::tuned_retiming(&g);
        for mode in [DecMode::PerCopy, DecMode::Bulk] {
            let p = cred_retime_unfold(&g, &r, f, n, mode);
            println!(
                "{name} f={f} {mode:?}: {} instructions, {} dynamic",
                p.code_size(),
                p.dynamic_size()
            );
            group.bench_function(format!("{name}/{mode:?}"), |b| {
                b.iter(|| black_box(cred_vm::execute(black_box(&p)).unwrap()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
