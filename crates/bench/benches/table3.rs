//! Criterion bench for the Table 3 experiment: order comparison
//! (unfold-retime vs retime-unfold vs CRED) on the Figure 8 DFG.

use cred_codegen::DecMode;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let g = cred_kernels::chao_sha_fig8();
    let mut group = c.benchmark_group("table3");
    for f in [2usize, 3, 4] {
        group.bench_function(format!("uf{f}"), |b| {
            b.iter(|| {
                black_box(cred_bench::compare_orders(
                    black_box(&g),
                    f,
                    None,
                    120,
                    DecMode::Bulk,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
