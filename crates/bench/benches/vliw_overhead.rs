//! The paper's "does not hurt performance" claim (§3.2): CRED's decrement
//! instructions should fit free ALU slots of the VLIW kernel. This bench
//! packs every benchmark's rate-optimally-retimed kernel on machines of
//! several widths and measures the schedule-length computation; the
//! resulting lengths (with and without the `P` decrements) are printed
//! once at startup.

use cred_schedule::vliw::{length_with_extra_alu, pack};
use cred_schedule::{list_schedule, FuConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_vliw(c: &mut Criterion) {
    let machines = [
        ("2alu+1mul", FuConfig::with_units(2, 1)),
        ("4alu+2mul", FuConfig::with_units(4, 2)),
        ("8alu+4mul", FuConfig::with_units(8, 4)),
    ];
    let mut group = c.benchmark_group("vliw_pack");
    for (name, g) in cred_kernels::all_benchmarks() {
        let (r, _) = cred_bench::tuned_retiming(&g);
        let gr = r.apply(&g);
        let p = r.register_count() as u64;
        for (mname, fu) in &machines {
            let sched = list_schedule(&gr, fu);
            let base = sched.length();
            let with_decs = length_with_extra_alu(&gr, &sched, fu, p);
            let packing = pack(&gr, &sched, fu);
            println!(
                "{name} on {mname}: kernel {} words, {} free ALU slots, +{p} decrements -> {} words ({})",
                base,
                packing.free_alu_slots.unwrap_or(0),
                with_decs,
                if with_decs == base { "no slowdown" } else { "slowdown" },
            );
            group.bench_function(format!("{name}/{mname}"), |b| {
                b.iter(|| {
                    let s = list_schedule(black_box(&gr), fu);
                    black_box(length_with_extra_alu(&gr, &s, fu, p))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vliw);
criterion_main!(benches);
