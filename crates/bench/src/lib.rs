//! # cred-bench — experiment harness
//!
//! Shared measurement code for the table binaries (`table1`..`table4`,
//! `figures`) and the Criterion benches. Every number printed by a table
//! binary is *measured from generated code* (instruction counts of real
//! [`cred_codegen::LoopProgram`]s, each first verified against the DFG
//! recurrence by `cred-vm`), with the paper's closed-form expectations
//! printed alongside.

use cred_codegen::cred::{cred_pipelined, cred_retime_unfold};
use cred_codegen::pipeline::{original_program, pipelined_program};
use cred_codegen::unfolded::{retime_unfold_program, unfold_retime_program};
use cred_codegen::DecMode;
use cred_dfg::{algo, Dfg};
use cred_retime::span::{compact_values, min_span_retiming};
use cred_retime::{min_period_retiming, Retiming};
use cred_unfold::unfold;
use cred_vm::check_against_reference;

/// The retiming pipeline used by all experiments: rate-optimal period via
/// OPT, then span (`M_r`) minimization, then register (`|N_r|`)
/// compaction.
pub fn tuned_retiming(g: &Dfg) -> (Retiming, u64) {
    let opt = min_period_retiming(g);
    let r = min_span_retiming(g, opt.period).expect("optimal period is feasible");
    let r = compact_values(g, opt.period, &r);
    (r, opt.period)
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Original code size `L`.
    pub orig: usize,
    /// Software-pipelined code size (measured).
    pub retimed: usize,
    /// CRED code size (measured).
    pub cred: usize,
    /// Conditional registers used.
    pub registers: usize,
    /// Percent reduction retimed -> CRED.
    pub reduction: f64,
    /// Rate-optimal cycle period the retiming achieves.
    pub period: u64,
    /// Maximum (normalized) retiming value.
    pub m_r: i64,
}

/// Measure one Table 1 row; `n` is the trip count used for VM
/// verification.
pub fn table1_row(name: &str, g: &Dfg, n: u64) -> Table1Row {
    let (r, period) = tuned_retiming(g);
    let orig = original_program(g, n);
    let pip = pipelined_program(g, &r, n);
    let cred = cred_pipelined(g, &r, n);
    for p in [&orig, &pip, &cred] {
        check_against_reference(g, p).unwrap_or_else(|e| panic!("{name}/{}: {e}", p.name));
    }
    // Cross-check measured sizes against the closed forms (which assume a
    // non-degenerate kernel, n > M_r; smaller trip counts clip the windows).
    if n as i64 > r.max_value() {
        assert_eq!(
            pip.code_size() as u64,
            cred_codegen::size::pipelined_size(
                g.node_count() as u64,
                g.node_count() as u64,
                r.max_value() as u64
            ),
            "{name}: pipelined size formula"
        );
    }
    assert_eq!(
        cred.code_size() as u64,
        cred_codegen::size::cred_pipelined_size(g.node_count() as u64, r.register_count() as u64),
        "{name}: CRED size formula"
    );
    Table1Row {
        name: name.to_string(),
        orig: orig.code_size(),
        retimed: pip.code_size(),
        cred: cred.code_size(),
        registers: r.register_count(),
        reduction: cred_codegen::size::reduction_percent(
            pip.code_size() as u64,
            cred.code_size() as u64,
        ),
        period,
        m_r: r.max_value(),
    }
}

/// One row of Table 2 (retime + unfold, `f = 3`, `n = 101` in the paper).
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Retime-then-unfold code size (measured).
    pub retime_unfold: usize,
    /// CRED code size, per-copy decrement mode (measured; Table 2's
    /// accounting).
    pub cred: usize,
    /// Conditional registers used.
    pub registers: usize,
    /// Percent reduction.
    pub reduction: f64,
}

/// Measure one Table 2 row.
pub fn table2_row(name: &str, g: &Dfg, f: usize, n: u64) -> Table2Row {
    let (r, _) = tuned_retiming(g);
    let ru = retime_unfold_program(g, &r, f, n);
    let cred = cred_retime_unfold(g, &r, f, n, DecMode::PerCopy);
    for p in [&ru, &cred] {
        check_against_reference(g, p).unwrap_or_else(|e| panic!("{name}/{}: {e}", p.name));
    }
    Table2Row {
        name: name.to_string(),
        retime_unfold: ru.code_size(),
        cred: cred.code_size(),
        registers: r.register_count(),
        reduction: cred_codegen::size::reduction_percent(
            ru.code_size() as u64,
            cred.code_size() as u64,
        ),
    }
}

/// One column of Tables 3–4: the three approaches at one unfolding factor.
#[derive(Debug, Clone)]
pub struct OrderComparison {
    /// Unfolding factor.
    pub f: usize,
    /// Code size of unfold-then-retime (measured).
    pub unfold_retime: usize,
    /// Code size of retime-then-unfold (measured).
    pub retime_unfold: usize,
    /// Code size of CRED on the retimed-unfolded loop (measured).
    pub cred: usize,
    /// Iteration period (cycle period of the unfolded body / f).
    pub iteration_period: f64,
    /// Registers CRED uses.
    pub registers: usize,
}

/// Compare the two transformation orders and CRED at unfolding factor `f`,
/// with the *cycle period of the unfolded graph* fixed to `target_period`
/// (the paper fixes performance per `uf` "to make a fair comparison";
/// `None` = rate-optimal, i.e. the minimum achievable).
///
/// `mode` selects the CRED decrement accounting (Table 3 uses Bulk,
/// Table 4 per-copy).
pub fn compare_orders(
    g: &Dfg,
    f: usize,
    target_period: Option<u64>,
    n: u64,
    mode: DecMode,
) -> OrderComparison {
    let u = unfold(g, f);
    // Unfold-then-retime at the target period (minimum-span solution).
    let opt_f = min_period_retiming(&u.graph);
    let period = target_period.unwrap_or(opt_f.period).max(opt_f.period);
    let r_f = min_span_retiming(&u.graph, period).expect("period >= optimum is feasible");
    let r_f = compact_values(&u.graph, period, &r_f);
    let ur_prog = unfold_retime_program(g, &u, &r_f, n);

    // Retime-then-unfold via the projected retiming (Theorem 4.5), then
    // the CRED kernel on top of it.
    let projected = cred_unfold::orders::project_retiming(&u, &r_f);
    let ru = cred_unfold::orders::retime_then_unfold(g, &projected, f);
    let ru_prog = retime_unfold_program(g, &projected, f, n);
    let cred_prog = cred_retime_unfold(g, &projected, f, n, mode);
    for p in [&ur_prog, &ru_prog, &cred_prog] {
        check_against_reference(g, p).unwrap_or_else(|e| panic!("f={f}/{}: {e}", p.name));
    }
    let achieved = algo::cycle_period(&ru.unfolded.graph).expect("well-formed");
    OrderComparison {
        f,
        unfold_retime: ur_prog.code_size(),
        retime_unfold: ru_prog.code_size(),
        cred: cred_prog.code_size(),
        iteration_period: achieved.max(period) as f64 / f as f64,
        registers: projected.register_count(),
    }
}

/// Markdown-ish fixed-width table printer.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}
