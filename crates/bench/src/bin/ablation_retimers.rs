//! Ablation: where the retiming comes from. CRED consumes *any* legal
//! retiming; this experiment compares three generators on each benchmark —
//!
//! * **OPT** — constraint-based min-period retiming (+ span minimization
//!   and greedy register compaction), the paper's setting;
//! * **rotation** — Chao–Sha rotation scheduling on a 4-ALU/2-MUL VLIW;
//! * **modulo** — iterative modulo scheduling's stage retiming on the same
//!   machine (the TI-style flow of the paper's reference \[4\]);
//!
//! and reports performance (period/II), pipeline depth `M_r`, registers
//! `P_r`, and the CRED code size `L + 2 P_r`. The last column checks the
//! greedy register compaction against the exact branch-and-bound optimum.

use cred_bench::print_table;
use cred_codegen::cred::cred_pipelined;
use cred_kernels::all_benchmarks;
use cred_retime::registers::min_registers_retiming;
use cred_schedule::modulo::{modulo_schedule, stage_retiming};
use cred_schedule::{rotation_schedule, FuConfig};
use cred_vm::check_against_reference;

fn main() {
    let fu = FuConfig::with_units(4, 2);
    let n = 101u64;
    println!("Ablation: retiming source feeding CRED (machine: 4 ALU + 2 MUL)\n");
    let mut rows = Vec::new();
    for (name, g) in all_benchmarks() {
        let l = g.node_count();

        // OPT (the tables' pipeline).
        let (r_opt, period) = cred_bench::tuned_retiming(&g);
        let p_opt = cred_pipelined(&g, &r_opt, n);
        check_against_reference(&g, &p_opt).unwrap();

        // Rotation scheduling.
        let rot = rotation_schedule(&g, &fu, l * 8);
        let p_rot = cred_pipelined(&g, &rot.retiming, n);
        check_against_reference(&g, &p_rot).unwrap();

        // Modulo scheduling.
        let ms = modulo_schedule(&g, &fu, 64).expect("schedulable");
        let r_mod = stage_retiming(&g, &ms);
        let p_mod = cred_pipelined(&g, &r_mod, n);
        check_against_reference(&g, &p_mod).unwrap();

        // Exact register optimum at the OPT period.
        let exact = min_registers_retiming(&g, period, 3_000_000).unwrap();
        let exact_str = if exact.exact {
            format!("{} (exact)", exact.retiming.register_count())
        } else {
            format!("{} (budget)", exact.retiming.register_count())
        };

        rows.push(vec![
            name.to_string(),
            format!("{period}/{}", r_opt.max_value()),
            format!("{}", p_opt.code_size()),
            format!("{}/{}", rot.length, rot.retiming.max_value()),
            format!("{}", p_rot.code_size()),
            format!("{}/{}", ms.ii, r_mod.max_value()),
            format!("{}", p_mod.code_size()),
            exact_str,
        ]);
    }
    print_table(
        &[
            "Benchmark",
            "OPT per/M",
            "CR",
            "rot per/M",
            "CR",
            "mod II/M",
            "CR",
            "min regs",
        ],
        &rows,
    );
    println!("\nCR = CRED code size L + 2*P_r; per/M = achieved period and");
    println!("pipeline depth. All programs VM-verified before measuring.");
}
