//! Ablation: total reduction (CRED, Theorem 4.3) vs the partial
//! "code collapsing" the paper's reference \[4\] ships in the TMS320C6000
//! flow — mask only the epilogue (keep the prologue straight-line) or
//! only the prologue. Every variant is VM-verified before measuring.
//!
//! The half measures pay the full `2P` register overhead to remove only
//! half the expansion, so they can break even or even lose to plain
//! pipelining — the paper's "quality could not be guaranteed" complaint,
//! quantified.

use cred_bench::{print_table, tuned_retiming};
use cred_codegen::collapse::{collapse_epilogue, collapse_prologue};
use cred_codegen::cred::cred_pipelined;
use cred_codegen::pipeline::pipelined_program;
use cred_kernels::all_benchmarks;
use cred_vm::check_against_reference;

fn main() {
    let n = 101u64;
    println!("Ablation: partial collapsing vs total CRED (n = {n})\n");
    let mut rows = Vec::new();
    for (name, g) in all_benchmarks() {
        let (r, _) = tuned_retiming(&g);
        let pip = pipelined_program(&g, &r, n);
        let epi = collapse_epilogue(&g, &r, n);
        let pro = collapse_prologue(&g, &r, n);
        let full = cred_pipelined(&g, &r, n);
        for p in [&pip, &epi, &pro, &full] {
            check_against_reference(&g, p).unwrap();
        }
        rows.push(vec![
            name.to_string(),
            pip.code_size().to_string(),
            epi.code_size().to_string(),
            pro.code_size().to_string(),
            full.code_size().to_string(),
        ]);
    }
    print_table(
        &[
            "Benchmark",
            "pipelined",
            "collapse-epi",
            "collapse-pro",
            "CRED (total)",
        ],
        &rows,
    );
}
