//! Regenerate Table 4: code size for the 4-stage lattice filter with the
//! iteration period fixed to 8 (unfolded-body cycle period `8 * f`),
//! comparing unfold-then-retime, retime-then-unfold, and CRED (per-copy
//! decrement accounting, as Table 4's own CR row decomposes into
//! `f*L + P*(f+1)`).

use cred_bench::{compare_orders, print_table};
use cred_codegen::DecMode;
use cred_kernels::lattice_filter;

/// Paper cells per uf: (unfold-retime, retime-unfold, CR).
const PAPER: &[(usize, usize, usize)] = &[(156, 130, 61), (312, 156, 90), (416, 182, 119)];

fn main() {
    let g = lattice_filter();
    let n = 96u64; // divisible by 2, 3, 4: no remainder code
    println!("Table 4: code size for the 4-stage lattice, cycle period fixed to 8 (n = {n})");
    println!("(measured | paper)\n");
    let mut cols = Vec::new();
    for (f, paper) in [2usize, 3, 4].into_iter().zip(PAPER) {
        let c = compare_orders(&g, f, None, n, DecMode::PerCopy);
        cols.push((c, *paper));
    }
    let rows = vec![
        std::iter::once("unfold-retime".to_string())
            .chain(
                cols.iter()
                    .map(|(c, p)| format!("{} | {}", c.unfold_retime, p.0)),
            )
            .collect::<Vec<_>>(),
        std::iter::once("retime-unfold".to_string())
            .chain(
                cols.iter()
                    .map(|(c, p)| format!("{} | {}", c.retime_unfold, p.1)),
            )
            .collect(),
        std::iter::once("retime-unfold-CR".to_string())
            .chain(cols.iter().map(|(c, p)| format!("{} | {}", c.cred, p.2)))
            .collect(),
        std::iter::once("registers (CR)".to_string())
            .chain(cols.iter().map(|(c, _)| format!("{}", c.registers)))
            .collect(),
        std::iter::once("iteration period".to_string())
            .chain(cols.iter().map(|(c, _)| format!("{}", c.iteration_period)))
            .collect(),
    ];
    print_table(&["Approach", "uf=2", "uf=3", "uf=4"], &rows);
}
