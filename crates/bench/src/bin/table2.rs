//! Regenerate Table 2: code size after retiming *and* unfolding
//! (`f = 3`, loop counter `n = 101`), against the CRED-reduced form
//! (per-copy decrement accounting, as Table 2's own numbers decompose).
//!
//! The measured "R-U" column uses the correct remainder `(n - M_r) mod f`
//! of the actually-executable program; the paper's closed form uses
//! `n mod f` (see EXPERIMENTS.md).

use cred_bench::{print_table, table2_row};
use cred_kernels::all_benchmarks;

/// Paper cells: (R-U, CR, Rgs, red%).
const PAPER: &[(usize, usize, usize, f64)] = &[
    (48, 32, 2, 33.3),
    (77, 45, 3, 41.6),
    (120, 61, 4, 49.2),
    (238, 114, 3, 52.1),
    (182, 90, 3, 50.5),
    (168, 89, 2, 47.0),
];

fn main() {
    println!("Table 2: code size after retiming and unfolding (f = 3, n = 101)");
    println!("(measured | paper)\n");
    let mut rows = Vec::new();
    for ((name, g), paper) in all_benchmarks().iter().zip(PAPER) {
        let r = table2_row(name, g, 3, 101);
        rows.push(vec![
            r.name.clone(),
            format!("{} | {}", r.retime_unfold, paper.0),
            format!("{} | {}", r.cred, paper.1),
            format!("{} | {}", r.registers, paper.2),
            format!("{:.1} | {:.1}", r.reduction, paper.3),
        ]);
    }
    print_table(&["Benchmark", "R-U", "CR", "Rgs", "% Red."], &rows);
}
