//! VM executor timing report: the tree-walking interpreter against the
//! preresolved instruction tape, per bundled kernel, plus the end-to-end
//! verification oracle on both backends.
//!
//! The tape side is timed as compile + execute — the lowering is paid on
//! every measurement, the same way `credc verify` pays it once per
//! generated program. Every timed pair is cross-checked for bit-identical
//! results first. Prints one JSON document (the seed for `BENCH_vm.json`)
//! to stdout, or to the file given with `--out <path>`.
//!
//! ```text
//! cargo run --release -p cred-bench --bin vm_tape_report -- --out BENCH_vm.json
//! ```

use std::time::Instant;

use cred_codegen::cred::cred_retime_unfold;
use cred_codegen::{DecMode, LoopProgram};
use cred_dfg::Dfg;
use cred_explore::cache::compute_plan;
use cred_verify::{fuzz_suite, CaseConfig, Executor, FuzzConfig};
use cred_vm::{compile, cross_check_executors, execute, execute_tape};

const REPS: usize = 9;
const PASSES: usize = 5;
const N: u64 = 2048;
const F: usize = 2;
const ORACLE_CASES: usize = 60;

/// The guard-heaviest generator output for one kernel: CRED
/// retime+unfold at `F`, trip count `N`.
fn program_for(g: &Dfg) -> LoopProgram {
    let r = compute_plan(g, F).projected;
    cred_retime_unfold(g, &r, F, N, DecMode::Bulk)
}

#[derive(Clone, Copy)]
struct KernelTiming {
    tree: u128,
    tape: u128,
    exec: u128,
}

fn time_kernel(acc: &mut KernelTiming, name: &str, g: &Dfg) {
    let p = program_for(g);
    cross_check_executors(&p).unwrap_or_else(|d| panic!("{name}: {d}"));
    let tape_once = compile(&p).unwrap();
    // Interleave the sides rep by rep, so background load on a shared
    // box distorts all minima the same way instead of landing on
    // whichever side happened to run during the noisy stretch. The
    // caller sweeps the whole kernel list multiple times and min-merges
    // into `acc` for the same reason, at coarser grain.
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(execute(&p).unwrap());
        acc.tree = acc.tree.min(t.elapsed().as_nanos());
        let t = Instant::now();
        std::hint::black_box(execute_tape(&p).unwrap());
        acc.tape = acc.tape.min(t.elapsed().as_nanos());
        let t = Instant::now();
        std::hint::black_box(tape_once.execute().unwrap());
        acc.exec = acc.exec.min(t.elapsed().as_nanos());
    }
}

/// End-to-end `credc verify` throughput on both backends: the same
/// deterministic case stream through the full four-layer oracle. The
/// oracle also computes the reference recurrence, generates code, checks
/// theorems, and walks the guard trace, so its speedup is much smaller
/// than the raw executor ratio — it is the factor CI's deeper budgets
/// actually bank. At the default fuzz distribution (trip <= 40) the
/// programs are so small that lowering costs about as much as the whole
/// tree-walk, so the tape only breaks even there; `deep` measures a
/// CI-shaped heavy tail (trip up to 2048) where execution dominates.
fn time_oracle(label: &str, cases: usize, case: CaseConfig) -> String {
    let cfg_for = |executor| FuzzConfig {
        cases,
        seed: 0,
        case: case.clone(),
        shrink_failures: false,
        executor,
    };
    for e in [Executor::Tree, Executor::Tape] {
        assert!(
            fuzz_suite(&cfg_for(e)).is_clean(),
            "oracle must be clean while timing"
        );
    }
    // Same pairing rationale as `time_kernel`.
    let (mut tree, mut tape) = (u128::MAX, u128::MAX);
    for _ in 0..3 {
        let t = Instant::now();
        std::hint::black_box(fuzz_suite(&cfg_for(Executor::Tree)));
        tree = tree.min(t.elapsed().as_nanos());
        let t = Instant::now();
        std::hint::black_box(fuzz_suite(&cfg_for(Executor::Tape)));
        tape = tape.min(t.elapsed().as_nanos());
    }
    let per_sec = |total: u128| cases as f64 / (total as f64 / 1e9);
    format!(
        "  {{ \"config\": \"{label}\", \"cases\": {cases}, \"max_trip\": {}, \
         \"tree_ns\": {tree}, \"tape_ns\": {tape}, \
         \"tree_cases_per_sec\": {:.1}, \"tape_cases_per_sec\": {:.1}, \"speedup\": {:.3} }}",
        case.max_trip,
        per_sec(tree),
        per_sec(tape),
        tree as f64 / tape as f64
    )
}

fn main() {
    let mut out_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!("vm_tape_report: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let kernels = [
        ("iir", cred_kernels::iir_filter()),
        ("allpole", cred_kernels::all_pole_filter()),
        ("lattice", cred_kernels::lattice_filter()),
        ("volterra", cred_kernels::volterra_filter()),
        ("elliptic", cred_kernels::elliptic_filter()),
    ];
    let mut timed = vec![
        KernelTiming {
            tree: u128::MAX,
            tape: u128::MAX,
            exec: u128::MAX,
        };
        kernels.len()
    ];
    for _ in 0..PASSES {
        for (acc, (name, g)) in timed.iter_mut().zip(kernels.iter()) {
            time_kernel(acc, name, g);
        }
    }
    let rows: Vec<String> = timed
        .iter()
        .zip(kernels.iter())
        .map(|(k, (name, g))| {
            format!(
                "    {{ \"name\": \"{name}\", \"nodes\": {}, \"n\": {N}, \"f\": {F}, \
                 \"tree_ns\": {}, \"tape_ns\": {}, \"tape_exec_ns\": {}, \
                 \"speedup\": {:.3}, \"speedup_amortized\": {:.3} }}",
                g.node_count(),
                k.tree,
                k.tape,
                k.exec,
                k.tree as f64 / k.tape as f64,
                k.tree as f64 / k.exec as f64
            )
        })
        .collect();
    let tree_total: u128 = timed.iter().map(|k| k.tree).sum();
    let tape_total: u128 = timed.iter().map(|k| k.tape).sum();
    let exec_total: u128 = timed.iter().map(|k| k.exec).sum();
    let geomean_of = |f: &dyn Fn(&KernelTiming) -> f64| {
        (timed.iter().map(|k| f(k).ln()).sum::<f64>() / timed.len() as f64).exp()
    };
    let geomean = geomean_of(&|k| k.tree as f64 / k.tape as f64);
    let geomean_amortized = geomean_of(&|k| k.tree as f64 / k.exec as f64);
    let oracle = time_oracle("default-fuzz", ORACLE_CASES, CaseConfig::default());
    let deep = CaseConfig {
        max_trip: 2048,
        ..CaseConfig::default()
    };
    let oracle_deep = time_oracle("deep-trips", 20, deep);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str(&format!("\"machine_threads\": {cores},\n"));
    doc.push_str(&format!("\"reps_min_of\": {},\n", REPS * PASSES));
    doc.push_str(
        "\"pass\": \"one full execution of the CRED retime+unfold program \
         (tape side pays compile + execute)\",\n",
    );
    doc.push_str("\"kernels\": [\n");
    doc.push_str(&rows.join(",\n"));
    doc.push_str("\n],\n");
    doc.push_str(&format!(
        "\"aggregate\": {{ \"tree_ns\": {tree_total}, \"tape_ns\": {tape_total}, \
         \"tape_exec_ns\": {exec_total}, \"speedup_total\": {:.3}, \
         \"speedup_total_amortized\": {:.3}, \"speedup_geomean\": {:.3}, \
         \"speedup_geomean_amortized\": {:.3} }},\n",
        tree_total as f64 / tape_total as f64,
        tree_total as f64 / exec_total as f64,
        geomean,
        geomean_amortized
    ));
    doc.push_str("\"verify_oracle\": [\n");
    doc.push_str(&oracle);
    doc.push_str(",\n");
    doc.push_str(&oracle_deep);
    doc.push_str("\n]\n}\n");

    match out_path {
        Some(p) => std::fs::write(&p, &doc).expect("write --out file"),
        None => print!("{doc}"),
    }
}
