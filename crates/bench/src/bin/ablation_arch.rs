//! Ablation: conditional-register architecture. The paper's machine model
//! (TI C6x-style) pays explicit `setup` + decrement instructions —
//! `f*L + 2P` (bulk) or `f*L + P(f+1)` (per-copy). An IA-64-style machine
//! with rotating stage predicates decrements every conditional register in
//! the loop branch (`br.ctop`), eliminating the decrements entirely:
//! `f*L + P`. All three variants are VM-verified before measuring.

use cred_bench::{print_table, tuned_retiming};
use cred_codegen::cred::{cred_retime_unfold, cred_rotating};
use cred_codegen::DecMode;
use cred_kernels::all_benchmarks;
use cred_vm::check_against_reference;

fn main() {
    let n = 101u64;
    println!("Ablation: predication architecture (n = {n})\n");
    for f in [1usize, 3] {
        println!("--- unfolding factor f = {f} ---");
        let mut rows = Vec::new();
        for (name, g) in all_benchmarks() {
            let (r, _) = tuned_retiming(&g);
            let per = cred_retime_unfold(&g, &r, f, n, DecMode::PerCopy);
            let bulk = cred_retime_unfold(&g, &r, f, n, DecMode::Bulk);
            let rot = cred_rotating(&g, &r, f, n);
            for p in [&per, &bulk, &rot] {
                check_against_reference(&g, p).unwrap();
            }
            rows.push(vec![
                name.to_string(),
                format!("{}", r.register_count()),
                format!("{}", per.code_size()),
                format!("{}", bulk.code_size()),
                format!("{}", rot.code_size()),
            ]);
        }
        print_table(
            &[
                "Benchmark",
                "P",
                "per-copy",
                "bulk (TI)",
                "rotating (IA-64)",
            ],
            &rows,
        );
        println!();
    }
}
