//! Extension experiment: Table 1 measured in VLIW fetch-packet *words*
//! (C6x-style, 6 ALU + 2 MUL slots per word) instead of instruction
//! counts. The CRED advantage survives the change of metric — its
//! decrements mostly co-issue with the kernel.

use cred_bench::{print_table, tuned_retiming};
use cred_codegen::bundle::{bundle, BundleMachine};
use cred_codegen::cred::cred_pipelined;
use cred_codegen::pipeline::{original_program, pipelined_program};
use cred_kernels::all_benchmarks;
use cred_vm::check_against_reference;

fn main() {
    let m = BundleMachine::c6x();
    let n = 101u64;
    println!("Table 1 in VLIW words (6 ALU + 2 MUL per fetch packet, n = {n})\n");
    let mut rows = Vec::new();
    for (name, g) in all_benchmarks() {
        let (r, _) = tuned_retiming(&g);
        let orig = original_program(&g, n);
        let pip = pipelined_program(&g, &r, n);
        let cred = cred_pipelined(&g, &r, n);
        for p in [&orig, &pip, &cred] {
            check_against_reference(&g, p).unwrap();
        }
        let so = bundle(&orig, m);
        let sp = bundle(&pip, m);
        let sc = bundle(&cred, m);
        rows.push(vec![
            name.to_string(),
            so.total().to_string(),
            format!(
                "{} ({}+{}+{})",
                sp.total(),
                sp.pre_words,
                sp.body_words,
                sp.post_words
            ),
            format!(
                "{} ({}+{}+{})",
                sc.total(),
                sc.pre_words,
                sc.body_words,
                sc.post_words
            ),
            format!(
                "{:.1}",
                cred_codegen::size::reduction_percent(sp.total() as u64, sc.total() as u64)
            ),
        ]);
    }
    print_table(
        &["Benchmark", "Orig", "Ret. (pre+body+post)", "CR", "% Red."],
        &rows,
    );
}
