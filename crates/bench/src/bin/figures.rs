//! Regenerate the paper's worked figures as text:
//!
//! * Figure 1 — the two-node DFG before/after retiming (DOT + periods);
//! * Figure 2 — its static schedules;
//! * Figure 3 — the five-node loop: software-pipelined code (a), the CRED
//!   code (b), and the execution sequence with guard values (c);
//! * Figure 5 — the three-node loop unfolded by 3 (a) and its CRED form
//!   removing the remainder iterations (b);
//! * Figures 6–7 — the retimed (`r(B) = 1`) and unfolded loop with its
//!   CRED form and the `n = 9` execution sequence (c).

use cred_codegen::cred::{cred_pipelined, cred_retime_unfold, cred_unfolded};
use cred_codegen::pipeline::pipelined_program;
use cred_codegen::pretty::render;
use cred_codegen::unfolded::{retime_unfold_program, unfolded_program};
use cred_codegen::DecMode;
use cred_dfg::{dot, DfgBuilder, OpKind};
use cred_retime::Retiming;
use cred_schedule::asap_schedule;
use cred_vm::{check_against_reference, trace_loop};

fn figure1_and_2() {
    println!("=== Figure 1: retiming a two-node DFG ===\n");
    let mut b = DfgBuilder::new();
    let a = b.node("A", 1, OpKind::Add(1));
    let bb = b.node("B", 1, OpKind::Mul(0));
    b.edge(a, bb, 0);
    b.edge(bb, a, 2);
    let g = b.build().unwrap();
    println!("{}", dot::to_dot(&g, "figure1a"));
    let mut r = Retiming::zero(2);
    r.set(a, 1);
    let gr = r.apply(&g);
    println!("{}", dot::to_dot(&gr, "figure1b"));
    println!("=== Figure 2: static schedules ===\n");
    let s0 = asap_schedule(&g);
    let s1 = asap_schedule(&gr);
    println!(
        "original: {} control steps (A at {}, B at {})",
        s0.length(),
        s0.start(a),
        s0.start(bb)
    );
    println!(
        "retimed : {} control step  (A at {}, B at {})\n",
        s1.length(),
        s1.start(a),
        s1.start(bb)
    );
}

fn figure3() {
    println!("=== Figure 3: software-pipelined loop and its CRED form ===\n");
    let mut b = DfgBuilder::new();
    let a = b.node("A", 1, OpKind::Add(9));
    let bb = b.node("B", 1, OpKind::Mul(5));
    let c = b.node("C", 1, OpKind::Add(0));
    let d = b.node("D", 1, OpKind::Mul(0));
    let e = b.node("E", 1, OpKind::Add(30));
    b.edge(e, a, 4);
    b.edge(a, bb, 0);
    b.edge(a, c, 0);
    b.edge(bb, c, 2);
    b.edge(a, d, 0);
    b.edge(c, d, 0);
    b.edge(d, e, 0);
    let g = b.build().unwrap();
    let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
    let n = 10u64;
    let pip = pipelined_program(&g, &r, n);
    let cred = cred_pipelined(&g, &r, n);
    check_against_reference(&g, &pip).expect("3(a) verifies");
    check_against_reference(&g, &cred).expect("3(b) verifies");
    println!("--- (a) prologue/kernel/epilogue ---");
    println!("{}", render(&pip));
    println!("--- (b) after removing prologue/epilogue ---");
    println!("{}", render(&cred));
    println!("--- (c) execution sequence (guard values in parentheses) ---");
    let events = trace_loop(&cred);
    let mut current = i64::MIN;
    for ev in events {
        if ev.i != current {
            current = ev.i;
            print!("\ni={current:>3}: ");
        }
        let mark = if ev.enabled { "" } else { "!" };
        print!("{}{} ", mark, ev.cell());
    }
    println!("\n('!' marks nullified instructions)\n");
}

fn figure5() {
    println!("=== Figure 5: unfolded loop (f = 3) and remainder removal ===\n");
    let mut b = DfgBuilder::new();
    let a = b.node("A", 1, OpKind::Mul(3));
    let bb = b.node("B", 1, OpKind::Add(7));
    let c = b.node("C", 1, OpKind::Mul(2));
    b.edge(bb, a, 3);
    b.edge(a, bb, 0);
    b.edge(bb, c, 0);
    let g = b.build().unwrap();
    let n = 11u64; // n mod 3 = 2 remainder iterations
    let plain = unfolded_program(&g, 3, n);
    let cred = cred_unfolded(&g, 3, n, DecMode::Bulk);
    check_against_reference(&g, &plain).expect("5(a) verifies");
    check_against_reference(&g, &cred).expect("5(b) verifies");
    println!("--- (a) remainder outside the loop ---");
    println!("{}", render(&plain));
    println!("--- (b) one conditional register removes it ---");
    println!("{}", render(&cred));
}

fn figures6_7() {
    println!("=== Figures 6-7: retimed (r(B)=1) and unfolded (f = 3) ===\n");
    // Figure 6 reading with B[i] = A[i-1] + 7 (see codegen::unfolded tests).
    let mut b = DfgBuilder::new();
    let a = b.node("A", 1, OpKind::Mul(3));
    let bb = b.node("B", 1, OpKind::Add(7));
    let c = b.node("C", 1, OpKind::Mul(2));
    b.edge(bb, a, 3);
    b.edge(a, bb, 1);
    b.edge(bb, c, 0);
    let g = b.build().unwrap();
    let mut r = Retiming::zero(3);
    r.set(bb, 1);
    let n = 9u64;
    let plain = retime_unfold_program(&g, &r, 3, n);
    let cred = cred_retime_unfold(&g, &r, 3, n, DecMode::PerCopy);
    check_against_reference(&g, &plain).expect("6(b) verifies");
    check_against_reference(&g, &cred).expect("7(b) verifies");
    println!("--- Figure 6(b): retimed then unfolded, remainder explicit ---");
    println!("{}", render(&plain));
    println!("--- Figure 7(b): CRED form, two registers ---");
    println!("{}", render(&cred));
    println!("--- Figure 7(c): execution sequence for n = 9 ---");
    let mut current = i64::MIN;
    for ev in trace_loop(&cred) {
        if ev.i != current {
            current = ev.i;
            print!("\ni={current:>3}: ");
        }
        if ev.enabled {
            print!("{} ", ev.dest);
        }
    }
    println!("\n");
}

fn main() {
    figure1_and_2();
    figure3();
    figure5();
    figures6_7();
}
