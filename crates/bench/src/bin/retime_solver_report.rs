//! Solver-layer timing report: the dense reference path (full constraint
//! system + Bellman–Ford per probe) against the warm-started incremental
//! SPFA solver, per bundled kernel and on the elliptic unfolding sweep.
//!
//! Every timed pair is also checked for bit-identical results before it is
//! reported. Prints one JSON document (the seed for `BENCH_retime.json`)
//! to stdout, or to the file given with `--out <path>`.
//!
//! ```text
//! cargo run --release -p cred-bench --bin retime_solver_report -- --out BENCH_retime.json
//! ```

use std::time::Instant;

use cred_dfg::algo::WdMatrices;
use cred_dfg::Dfg;
use cred_retime::minperiod::min_period_retiming_reference;
use cred_retime::span::min_span_retiming_reference;
use cred_retime::{RetimeSolver, Retiming, SolverScratch};
use cred_unfold::unfold;

const REPS: usize = 7;
const SWEEP_MAX_F: usize = 4;

/// Wall-clock of the fastest of `reps` runs, in nanoseconds. Minimum (not
/// mean) because the interesting quantity is the cost of the work itself,
/// not scheduler noise on a loaded CI box.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .min()
        .expect("reps >= 1")
}

/// One min-period + min-span pass through the reference solver.
fn reference_pass(g: &Dfg, wd: &WdMatrices) -> (u64, Retiming) {
    let opt = min_period_retiming_reference(g, wd);
    let r = min_span_retiming_reference(g, wd, opt.period).unwrap();
    (opt.period, r)
}

/// The same pass through the incremental solver, reusing `scratch`.
fn incremental_pass(
    g: &Dfg,
    wd: &WdMatrices,
    scratch: SolverScratch,
) -> (u64, Retiming, SolverScratch) {
    let mut solver = RetimeSolver::with_scratch(g, wd, scratch);
    let opt = solver.min_period();
    let r = solver.min_span_from_base(opt.period, &opt.retiming);
    (opt.period, r, solver.into_scratch())
}

fn time_kernel(name: &str, g: &Dfg) -> String {
    let wd = WdMatrices::compute(g);
    let (p_ref, r_ref) = reference_pass(g, &wd);
    let (p_inc, r_inc, _) = incremental_pass(g, &wd, SolverScratch::new());
    assert_eq!((p_ref, &r_ref), (p_inc, &r_inc), "{name}: results diverge");
    let reference = best_of(REPS, || {
        std::hint::black_box(reference_pass(g, &wd));
    });
    let incremental = best_of(REPS, || {
        std::hint::black_box(incremental_pass(g, &wd, SolverScratch::new()));
    });
    format!(
        "    {{ \"name\": \"{name}\", \"nodes\": {}, \"reference_ns\": {reference}, \
         \"incremental_ns\": {incremental}, \"speedup\": {:.3} }}",
        g.node_count(),
        reference as f64 / incremental as f64
    )
}

fn time_sweep(name: &str, g: &Dfg) -> String {
    let graphs: Vec<(Dfg, WdMatrices)> = (1..=SWEEP_MAX_F)
        .map(|f| {
            let u = unfold(g, f).graph;
            let wd = WdMatrices::compute(&u);
            (u, wd)
        })
        .collect();
    for (u, wd) in &graphs {
        let (p_ref, r_ref) = reference_pass(u, wd);
        let (p_inc, r_inc, _) = incremental_pass(u, wd, SolverScratch::new());
        assert_eq!((p_ref, r_ref), (p_inc, r_inc), "{name} sweep diverges");
    }
    let reference = best_of(REPS, || {
        for (u, wd) in &graphs {
            std::hint::black_box(reference_pass(u, wd));
        }
    });
    let incremental = best_of(REPS, || {
        let mut scratch = SolverScratch::new();
        for (u, wd) in &graphs {
            let (p, r, s) = incremental_pass(u, wd, scratch);
            std::hint::black_box((p, r));
            scratch = s;
        }
    });
    format!(
        "  {{ \"name\": \"{name}\", \"max_f\": {SWEEP_MAX_F}, \"reference_ns\": {reference}, \
         \"incremental_ns\": {incremental}, \"speedup\": {:.3} }}",
        reference as f64 / incremental as f64
    )
}

fn main() {
    let mut out_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!("retime_solver_report: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let kernels = [
        ("iir", cred_kernels::iir_filter()),
        ("allpole", cred_kernels::all_pole_filter()),
        ("lattice", cred_kernels::lattice_filter()),
        ("volterra", cred_kernels::volterra_filter()),
        ("elliptic", cred_kernels::elliptic_filter()),
    ];
    let timed: Vec<String> = kernels.iter().map(|(n, g)| time_kernel(n, g)).collect();
    let sweep = time_sweep("elliptic", &kernels.last().unwrap().1);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str(&format!("\"machine_threads\": {cores},\n"));
    doc.push_str(&format!("\"reps_min_of\": {REPS},\n"));
    doc.push_str("\"pass\": \"min_period + min_span at the optimum (W/D precomputed)\",\n");
    doc.push_str("\"kernels\": [\n");
    doc.push_str(&timed.join(",\n"));
    doc.push_str("\n],\n");
    doc.push_str("\"unfold_sweep\": ");
    doc.push_str(&sweep);
    doc.push_str("\n}\n");

    match out_path {
        Some(p) => std::fs::write(&p, &doc).expect("write --out file"),
        None => print!("{doc}"),
    }
}
