//! Regenerate Table 1: code size of the six DSP benchmarks before
//! retiming, after rate-optimal retiming (software pipelining), and after
//! CRED; registers needed; percent reduction.
//!
//! Every size is measured from generated code that is first executed and
//! checked against the DFG recurrence (`cred-vm`). The paper's published
//! cells are printed alongside for comparison (see EXPERIMENTS.md).

use cred_bench::{print_table, table1_row};
use cred_kernels::all_benchmarks;

/// Paper cells: (orig, ret, cr, rgs, red%).
const PAPER: &[(usize, usize, usize, usize, f64)] = &[
    (8, 16, 12, 2, 25.0),
    (11, 33, 17, 3, 48.5),
    (15, 60, 23, 4, 61.7),
    (34, 68, 40, 3, 41.2),
    (26, 78, 32, 3, 59.0),
    (27, 54, 31, 2, 42.6),
];

fn main() {
    println!("Table 1: code size after retiming and registers needed");
    println!("(measured | paper) — n = 101 used for VM verification\n");
    let mut rows = Vec::new();
    for ((name, g), paper) in all_benchmarks().iter().zip(PAPER) {
        let r = table1_row(name, g, 101);
        rows.push(vec![
            r.name.clone(),
            format!("{} | {}", r.orig, paper.0),
            format!("{} | {}", r.retimed, paper.1),
            format!("{} | {}", r.cred, paper.2),
            format!("{} | {}", r.registers, paper.3),
            format!("{:.1} | {:.1}", r.reduction, paper.4),
            format!("{}", r.period),
            format!("{}", r.m_r),
        ]);
    }
    print_table(
        &[
            "Benchmark",
            "Orig",
            "Ret.",
            "CR",
            "Rgs",
            "% Red.",
            "period",
            "M_r",
        ],
        &rows,
    );
}
