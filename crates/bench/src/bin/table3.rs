//! Regenerate Table 3: code size and iteration period of the Figure 8 DFG
//! (non-unit-time nodes) under the two transformation orders and CRED, at
//! unfolding factors 2–4.
//!
//! The paper fixes the performance per factor "to make a fair comparison";
//! its iteration-period row is 20 / 19 / 13.5, i.e. unfolded-body cycle
//! periods 40 / 57 / 54. We target the same periods against the
//! reconstructed Figure 8 graph (see DESIGN.md) and use the bulk decrement
//! accounting Table 3's own CR row decomposes into (`f*L + 2P`).

use cred_bench::{compare_orders, print_table};
use cred_codegen::DecMode;
use cred_kernels::chao_sha_fig8;

/// Paper cells per uf: (unfold-retime, retime-unfold, CR, iteration period).
const PAPER: &[(usize, usize, usize, f64)] =
    &[(20, 20, 14, 20.0), (30, 30, 19, 19.0), (40, 30, 24, 13.5)];

fn main() {
    let g = chao_sha_fig8();
    // n divisible by 2, 3, 4 so no remainder code, matching the paper's
    // remainder-free counts.
    let n = 120u64;
    println!("Table 3: code size and iteration period for the Figure 8 DFG (n = {n})");
    println!("(measured | paper)\n");
    // Rate-optimal periods per factor. The paper instead fixed looser
    // periods (40/57/54 per unfolded body); on the reconstructed graph the
    // looser targets need no retiming at all (see EXPERIMENTS.md), so the
    // comparison is made at the tightest achievable performance.
    let mut cols = Vec::new();
    for (f, paper) in [2usize, 3, 4].into_iter().zip(PAPER) {
        let c = compare_orders(&g, f, None, n, DecMode::Bulk);
        cols.push((c, *paper));
    }
    let rows = vec![
        std::iter::once("unfold-retime".to_string())
            .chain(
                cols.iter()
                    .map(|(c, p)| format!("{} | {}", c.unfold_retime, p.0)),
            )
            .collect::<Vec<_>>(),
        std::iter::once("retime-unfold".to_string())
            .chain(
                cols.iter()
                    .map(|(c, p)| format!("{} | {}", c.retime_unfold, p.1)),
            )
            .collect(),
        std::iter::once("retime-unfold-CR".to_string())
            .chain(cols.iter().map(|(c, p)| format!("{} | {}", c.cred, p.2)))
            .collect(),
        std::iter::once("iteration period".to_string())
            .chain(
                cols.iter()
                    .map(|(c, p)| format!("{} | {}", c.iteration_period, p.3)),
            )
            .collect(),
        std::iter::once("registers (CR)".to_string())
            .chain(cols.iter().map(|(c, _)| format!("{}", c.registers)))
            .collect(),
    ];
    print_table(&["Approach", "uf=2", "uf=3", "uf=4"], &rows);
}
