//! Batch exploration experiment: run [`cred_explore::suite::explore_suite`]
//! over every bundled `.loop` kernel and time the serial reference sweep
//! against the parallel, memoized engine on the two largest kernels.
//!
//! Prints one JSON document (the seed for `BENCH_explore.json`) to stdout,
//! or to the file given with `--out <path>`.
//!
//! ```text
//! cargo run --release -p cred-bench --bin explore_suite -- --out BENCH_explore.json
//! ```

use std::time::Instant;

use cred_codegen::DecMode;
use cred_dfg::Dfg;
use cred_explore::{suite, sweep_reference, ExploreRequest};

const MAX_F: usize = 4;
const N: u64 = 101;
const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// Wall-clock of the fastest of `reps` runs, in nanoseconds. Minimum (not
/// mean) because the interesting quantity is the cost of the work itself,
/// not scheduler noise on a loaded CI box.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .min()
        .expect("reps >= 1")
}

fn time_kernel(name: &str, g: &Dfg, reps: usize) -> String {
    let serial = best_of(reps, || {
        std::hint::black_box(sweep_reference(g, MAX_F, N, DecMode::Bulk));
    });
    let mut parallel = Vec::new();
    for threads in THREAD_COUNTS {
        let ns = best_of(reps, || {
            std::hint::black_box(
                ExploreRequest::new(g.clone())
                    .max_f(MAX_F)
                    .trip_count(N)
                    .threads(threads)
                    .run()
                    .expect("unlimited sweep"),
            );
        });
        parallel.push(format!(
            "{{ \"threads\": {threads}, \"ns\": {ns}, \"speedup\": {:.3} }}",
            serial as f64 / ns as f64
        ));
    }
    format!(
        "    {{ \"name\": \"{name}\", \"max_f\": {MAX_F}, \"serial_ns\": {serial}, \
         \"parallel\": [ {} ] }}",
        parallel.join(", ")
    )
}

fn main() {
    let mut out_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!("explore_suite: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let kernels_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../kernels");
    let kernels = suite::load_kernels(std::path::Path::new(kernels_dir))
        .expect("bundled kernel suite parses");

    // The batch sweep itself: every kernel, all factors, shared cache.
    let report = suite::explore_suite(&kernels, MAX_F, N, DecMode::Bulk, 8);

    // Serial vs parallel timing on the two largest kernels.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let timed: Vec<String> = kernels
        .iter()
        .filter(|(name, _)| name == "elliptic" || name == "volterra")
        .map(|(name, g)| time_kernel(name, g, 5))
        .collect();

    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str(&format!("\"machine_threads\": {cores},\n"));
    doc.push_str("\"timing\": [\n");
    doc.push_str(&timed.join(",\n"));
    doc.push_str("\n],\n");
    doc.push_str("\"suite\": ");
    doc.push_str(&report.to_json());
    doc.push_str("}\n");

    match out_path {
        Some(p) => std::fs::write(&p, &doc).expect("write --out file"),
        None => print!("{doc}"),
    }
}
