//! Performance experiment: does CRED "jeopardize the performance"?
//!
//! Static cycle model (VLIW fetch packets on a C6x-like 6 ALU + 2 MUL
//! machine; cycles = pre + trips * body + post): compare the original
//! loop, the software-pipelined loop, the CRED loop (TI-style explicit
//! decrements), and the rotating-predicate CRED loop, all VM-verified,
//! plus the delay (data-register) cost retiming itself incurs — the one
//! expansion CRED does not address.

use cred_bench::{print_table, tuned_retiming};
use cred_codegen::bundle::BundleMachine;
use cred_codegen::cred::{cred_pipelined, cred_rotating};
use cred_codegen::perf::estimate_cycles;
use cred_codegen::pipeline::{original_program, pipelined_program};
use cred_kernels::all_benchmarks;
use cred_vm::check_against_reference;

fn main() {
    let n = 1000u64;
    let m = BundleMachine::c6x();
    println!("Static cycle model, n = {n}, 6 ALU + 2 MUL fetch packets\n");
    let mut rows = Vec::new();
    for (name, g) in all_benchmarks() {
        let (r, _) = tuned_retiming(&g);
        let orig_p = original_program(&g, n);
        let pip_p = pipelined_program(&g, &r, n);
        let cred_p = cred_pipelined(&g, &r, n);
        let rot_p = cred_rotating(&g, &r, 1, n);
        for p in [&orig_p, &pip_p, &cred_p, &rot_p] {
            check_against_reference(&g, p).unwrap();
        }
        let orig = estimate_cycles(&orig_p, m);
        let pip = estimate_cycles(&pip_p, m);
        let cred = estimate_cycles(&cred_p, m);
        let rot = estimate_cycles(&rot_p, m);
        let gr = r.apply(&g);
        rows.push(vec![
            name.to_string(),
            orig.cycles.to_string(),
            pip.cycles.to_string(),
            format!(
                "{} ({:+.1}%)",
                cred.cycles,
                100.0 * (cred.cycles as f64 - pip.cycles as f64) / pip.cycles as f64
            ),
            format!(
                "{} ({:+.1}%)",
                rot.cycles,
                100.0 * (rot.cycles as f64 - pip.cycles as f64) / pip.cycles as f64
            ),
            format!("{} -> {}", g.total_delays(), gr.total_delays()),
        ]);
    }
    print_table(
        &[
            "Benchmark",
            "orig cyc",
            "pipelined",
            "CRED (vs pip)",
            "rotating (vs pip)",
            "delays orig->retimed",
        ],
        &rows,
    );
    println!("\nThe last column is the data-register (delay) count before and");
    println!("after retiming: the storage cost of software pipelining itself,");
    println!("which conditional registers do not remove (cycle delays are");
    println!("conserved; feed-forward edges may gain delays).");
}
