//! Both transformation orders (§3.4) checked semantically through
//! `cred-verify`: unfold∘retime and retime∘unfold must each produce
//! loops whose strict VM execution matches the original recurrence, at
//! matched unfolding factors.

use cred_codegen::DecMode;
use cred_verify::{random_case, verify_case, Case, CaseConfig, TransformOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn both_orders_agree_with_the_recurrence_on_shared_graphs() {
    // Same graph, same n, same f — flip only the order. Both must pass,
    // and the verifier's reports expose the size trade the paper proves
    // (Theorem 4.5: S_{r,f} never beats S_{f,r} by more than the
    // remainder term, checked inside the oracle's theorem layer).
    let mut rng = StdRng::seed_from_u64(41);
    let cfg = CaseConfig::default();
    for i in 0..25 {
        let base = random_case(&mut rng, format!("ord{i}"), &cfg);
        for order in [TransformOrder::RetimeUnfold, TransformOrder::UnfoldRetime] {
            let c = Case {
                order,
                label: format!("{}-{order}", base.label),
                ..base.clone()
            };
            verify_case(&c).unwrap_or_else(|e| panic!("{c}: {e}"));
        }
    }
}

#[test]
fn decrement_modes_are_semantically_interchangeable() {
    // PerCopy vs Bulk only moves overhead instructions around; flipping
    // the mode on a fixed case must never change verification outcome.
    let mut rng = StdRng::seed_from_u64(43);
    let cfg = CaseConfig::default();
    for i in 0..25 {
        let base = random_case(&mut rng, format!("mode{i}"), &cfg);
        for mode in [DecMode::PerCopy, DecMode::Bulk] {
            let c = Case {
                mode,
                ..base.clone()
            };
            verify_case(&c).unwrap_or_else(|e| panic!("{c}: {e}"));
        }
    }
}
