//! Property tests for unfolding and the transformation orders.

use cred_dfg::{algo, gen, Dfg};
use cred_unfold::orders::{project_retiming, retime_then_unfold, unfold_then_retime_min};
use cred_unfold::unfold;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn graph_from(seed: u64, nodes: usize) -> Dfg {
    gen::random_dfg(
        &mut StdRng::seed_from_u64(seed),
        &gen::RandomDfgConfig {
            nodes,
            forward_edge_prob: 0.3,
            back_edges: (nodes / 2).max(1),
            max_delay: 3,
            max_time: 3,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn unfolding_scales_counts(seed in any::<u64>(), nodes in 1..10usize, f in 1..5usize) {
        let g = graph_from(seed, nodes);
        let u = unfold(&g, f);
        prop_assert_eq!(u.graph.node_count(), g.node_count() * f);
        prop_assert_eq!(u.graph.edge_count(), g.edge_count() * f);
        prop_assert!(u.graph.validate().is_ok());
    }

    #[test]
    fn unfolding_conserves_total_delays(seed in any::<u64>(), nodes in 1..10usize, f in 1..5usize) {
        let g = graph_from(seed, nodes);
        let u = unfold(&g, f);
        prop_assert_eq!(u.graph.total_delays(), g.total_delays());
    }

    #[test]
    fn unfolding_scales_iteration_bound(seed in any::<u64>(), nodes in 2..8usize, f in 1..4usize) {
        let g = graph_from(seed, nodes);
        let u = unfold(&g, f);
        match (algo::iteration_bound(&g), algo::iteration_bound(&u.graph)) {
            (Some(b), Some(bf)) => prop_assert_eq!(bf, b.scale(f as i64)),
            (None, None) => {}
            (a, b) => prop_assert!(false, "bound mismatch {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn provenance_is_a_bijection(seed in any::<u64>(), nodes in 1..8usize, f in 1..5usize) {
        let g = graph_from(seed, nodes);
        let u = unfold(&g, f);
        let mut seen = vec![false; u.graph.node_count()];
        for orig in g.node_ids() {
            for j in 0..f {
                let c = u.copy_id(orig, j);
                prop_assert_eq!(u.origin(c), (orig, j));
                prop_assert!(!seen[c.index()]);
                seen[c.index()] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|x| x));
    }

    #[test]
    fn projection_is_legal_and_matches_period(seed in any::<u64>(), nodes in 2..7usize, f in 2..4usize) {
        let g = graph_from(seed, nodes);
        let ur = unfold_then_retime_min(&g, f);
        let projected = project_retiming(&ur.unfolded, &ur.retiming);
        prop_assert!(projected.is_legal(&g), "Theorem 4.5 legality");
        let ru = retime_then_unfold(&g, &projected, f);
        prop_assert_eq!(ru.period, ur.period, "Chao-Sha period equivalence");
    }

    #[test]
    fn projected_max_bounded_by_f_times_max(seed in any::<u64>(), nodes in 2..7usize, f in 2..5usize) {
        // max_u sum_i r(u_i) <= f * max r: the inequality behind
        // S_{r,f} <= S_{f,r}.
        let g = graph_from(seed, nodes);
        let ur = unfold_then_retime_min(&g, f);
        let projected = project_retiming(&ur.unfolded, &ur.retiming);
        prop_assert!(projected.max_value() <= ur.retiming.max_value() * f as i64);
    }

    #[test]
    fn unfolded_semantics_match_original(seed in any::<u64>(), nodes in 1..7usize, f in 1..4usize, k in 1..8usize) {
        // Copy j at unfolded iteration m computes original iteration
        // f*(m-1)+j+1 (checked through the executable reference).
        let g = graph_from(seed, nodes);
        // Skip graphs with Input ops: their value depends on the raw
        // iteration index, which unfolded graphs renumber.
        let has_input = g
            .node_ids()
            .any(|v| matches!(g.node(v).op, cred_dfg::OpKind::Input(_)));
        prop_assume!(!has_input);
        let u = unfold(&g, f);
        let n_orig = k * f;
        let reference = g.reference_execution(n_orig);
        let unf = u.graph.reference_execution(k);
        for v in g.node_ids() {
            for j in 0..f {
                let cv = u.copy_id(v, j);
                for m in 0..k {
                    prop_assert_eq!(unf[cv.index()][m], reference[v.index()][f * m + j]);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn min_span_on_unfolded_graph_matches_reference(
        seed in any::<u64>(),
        nodes in 2..7usize,
        f in 2..5usize,
    ) {
        // The warm-started incremental span minimizer must stay
        // bit-identical to the dense Bellman–Ford reference on *unfolded*
        // graphs — the shape the exploration pipeline actually feeds it
        // (f copies per node, delays spread across copy boundaries).
        let g = graph_from(seed, nodes);
        let u = unfold(&g, f);
        let wd = cred_dfg::algo::WdMatrices::compute(&u.graph);
        let c = cred_retime::min_period_retiming_with(&u.graph, &wd).period;
        let fast = cred_retime::span::min_span_retiming_with(&u.graph, &wd, c);
        let dense = cred_retime::span::min_span_retiming_reference(&u.graph, &wd, c);
        prop_assert_eq!(&fast, &dense);
        let fast = fast.unwrap();
        prop_assert!(fast.is_legal(&u.graph));
        // And the compacted register assignment agrees too.
        let a = cred_retime::span::compact_values_wd(&u.graph, &wd, c, &fast);
        let b = cred_retime::span::compact_values_wd(&u.graph, &wd, c, &dense.unwrap());
        prop_assert_eq!(a, b);
    }
}
