//! # cred-unfold — loop unfolding engine
//!
//! Unfolding by factor `f` duplicates every node into `f` copies, exposing
//! inter-iteration parallelism; it is required to reach fractional
//! iteration bounds (paper §2.2). For an edge `e(u -> v)` with delay `d`,
//! copy `v_j` (handling original iteration `f*(k-1) + j + 1` at new
//! iteration `k`) reads from copy `u_{(j - d) mod f}` with delay
//! `(d - j + ((j - d) mod f)) / f` — the standard transformation; the `f`
//! edge copies' delays always sum back to `d` (delay conservation).
//!
//! [`orders`] builds the two pipeline orders the paper compares:
//! *unfold-then-retime* (`G_{f,r}`) and *retime-then-unfold* (`G_{r,f}`,
//! with the projected retiming `r_f(u) = sum_i r(u_i)` of Theorem 4.5).

pub mod orders;
mod unfolded;

pub use unfolded::{unfold, Unfolded};
