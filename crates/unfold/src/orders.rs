//! The two orders of combining retiming and unfolding (paper §3.4, §4).
//!
//! * **unfold-then-retime** (`G_{f,r}`): unfold `G` by `f`, then retime the
//!   unfolded graph to its minimum cycle period. Each copy may receive a
//!   distinct retiming value, so code size is
//!   `S_{f,r} = (M_{f,r} + 1) * L * f + Q_f` (Theorem 4.4) and the register
//!   demand can exceed the retimed-first approach.
//! * **retime-then-unfold** (`G_{r,f}`): project the unfolded retiming back
//!   to the original nodes, `r_f(u) = sum_{i=0}^{f-1} r(u_i)` (Theorem 4.5),
//!   retime `G` by `r_f`, then unfold. Chao–Sha \[1\] showed this achieves the
//!   same minimum cycle period; code size is
//!   `S_{r,f} = (max_u r_f(u) + f) * L + Q_f <= S_{f,r}`.

use crate::{unfold, Unfolded};
use cred_dfg::{algo, Dfg, NodeId};
use cred_retime::{min_period_retiming, Retiming};

/// Result of unfold-then-retime.
#[derive(Debug, Clone)]
pub struct UnfoldRetime {
    /// The unfolded graph (before retiming) with provenance.
    pub unfolded: Unfolded,
    /// Min-period retiming of the unfolded graph (normalized).
    pub retiming: Retiming,
    /// Minimum cycle period of the retimed unfolded graph (per new
    /// iteration, i.e. per `f` original iterations).
    pub period: u64,
}

impl UnfoldRetime {
    /// `M_{f,r}`: the maximum retiming value over all copies.
    pub fn max_retiming(&self) -> i64 {
        self.retiming.max_value()
    }

    /// Registers CRED would need: distinct retiming values over `V_f`.
    pub fn register_count(&self) -> usize {
        self.retiming.register_count()
    }
}

/// Result of retime-then-unfold.
#[derive(Debug, Clone)]
pub struct RetimeUnfold {
    /// The retiming `r_f` applied to the *original* graph (normalized).
    pub retiming: Retiming,
    /// The retimed original graph `G_r`.
    pub retimed: Dfg,
    /// The unfolded retimed graph `G_{r,f}` with provenance.
    pub unfolded: Unfolded,
    /// Cycle period of `G_{r,f}` (per new iteration).
    pub period: u64,
}

impl RetimeUnfold {
    /// `M_r = max_u r_f(u)` on the original nodes.
    pub fn max_retiming(&self) -> i64 {
        self.retiming.max_value()
    }

    /// Registers CRED needs: distinct retiming values over `V` — identical
    /// for the retimed loop and the retimed unfolded loop (Theorem 4.7).
    pub fn register_count(&self) -> usize {
        self.retiming.register_count()
    }
}

/// Unfold `g` by `f` and retime the result to its minimum cycle period.
pub fn unfold_then_retime_min(g: &Dfg, f: usize) -> UnfoldRetime {
    let u = unfold(g, f);
    let res = min_period_retiming(&u.graph);
    UnfoldRetime {
        unfolded: u,
        retiming: res.retiming,
        period: res.period,
    }
}

/// Project a retiming of the unfolded graph back to the original nodes:
/// `r_f(u) = sum_{j} r(u_j)` (Theorem 4.5). The projection of a legal
/// retiming is always legal on `G` (the copy delays of each edge sum to the
/// original delay).
pub fn project_retiming(u: &Unfolded, r_f: &Retiming) -> Retiming {
    let mut vals = vec![0i64; u.original_nodes];
    for (orig_idx, val) in vals.iter_mut().enumerate() {
        let orig = NodeId(orig_idx as u32);
        *val = u.copies(orig).map(|c| r_f.get(c)).sum();
    }
    let mut r = Retiming::from_values(vals);
    r.normalize();
    r
}

/// Retime `g` by the given (normalized) retiming and unfold by `f`.
pub fn retime_then_unfold(g: &Dfg, r: &Retiming, f: usize) -> RetimeUnfold {
    let retimed = r.apply(g);
    let unfolded = unfold(&retimed, f);
    let period = algo::cycle_period(&unfolded.graph).expect("well-formed");
    RetimeUnfold {
        retiming: r.normalized(),
        retimed,
        unfolded,
        period,
    }
}

/// The paper's recommended pipeline: compute the unfold-then-retime optimum,
/// project its retiming (`r_f(u) = sum_j r(u_j)`), and build the
/// retime-then-unfold graph, which matches the minimum cycle period at
/// strictly smaller or equal code size.
pub fn retime_then_unfold_projected(g: &Dfg, f: usize) -> (UnfoldRetime, RetimeUnfold) {
    let ur = unfold_then_retime_min(g, f);
    let projected = project_retiming(&ur.unfolded, &ur.retiming);
    let ru = retime_then_unfold(g, &projected, f);
    (ur, ru)
}

/// Code size of the remaining iterations an unfolded loop leaves outside its
/// body: `Q_f = (n mod f) * L_orig` (paper §4).
pub fn remainder_code_size(n: u64, f: u64, l_orig: u64) -> u64 {
    (n % f) * l_orig
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::gen;
    use rand::{rngs::StdRng, SeedableRng};

    fn sample_graphs(seed: u64, count: usize) -> Vec<Dfg> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                gen::random_dfg(
                    &mut rng,
                    &gen::RandomDfgConfig {
                        nodes: 6,
                        max_delay: 3,
                        max_time: 3,
                        back_edges: 2,
                        ..Default::default()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn projection_of_legal_retiming_is_legal() {
        for g in sample_graphs(31, 20) {
            for f in 2..=4 {
                let ur = unfold_then_retime_min(&g, f);
                let proj = project_retiming(&ur.unfolded, &ur.retiming);
                assert!(
                    proj.is_legal(&g),
                    "projected retiming must be legal (delay conservation)"
                );
            }
        }
    }

    #[test]
    fn projected_retime_unfold_matches_min_period() {
        // Chao–Sha: G_{r,f} with r_f(u) = sum r(u_i) achieves the same
        // minimum cycle period as G_{f,r}.
        for g in sample_graphs(32, 15) {
            for f in 2..=3 {
                let (ur, ru) = retime_then_unfold_projected(&g, f);
                assert_eq!(
                    ru.period, ur.period,
                    "projected retime-then-unfold must match the optimum"
                );
            }
        }
    }

    #[test]
    fn projected_max_retiming_bounded() {
        // max_u r_f(u) <= f * M_{f,r}, the inequality behind S_{r,f} <= S_{f,r}.
        for g in sample_graphs(33, 15) {
            for f in 2..=4 {
                let (ur, ru) = retime_then_unfold_projected(&g, f);
                assert!(
                    ru.max_retiming() <= ur.max_retiming() * f as i64,
                    "projection bound violated"
                );
            }
        }
    }

    #[test]
    fn theorem_code_size_inequality() {
        // S_{r,f} <= S_{f,r} for the projected retiming (Theorems 4.4/4.5).
        for g in sample_graphs(34, 15) {
            let l = g.node_count() as i64;
            for f in 2..=4usize {
                let (ur, ru) = retime_then_unfold_projected(&g, f);
                let s_fr = (ur.max_retiming() + 1) * l * f as i64;
                let s_rf = (ru.max_retiming() + f as i64) * l;
                assert!(s_rf <= s_fr, "S_rf={s_rf} > S_fr={s_fr} for f={f}");
            }
        }
    }

    #[test]
    fn register_count_retime_first_no_worse() {
        // Theorem 4.7 side-effect: registers for G_{r,f} = registers for
        // G_r <= registers for G_{f,r} is *not* guaranteed pointwise, but
        // the distinct-value count on V is at most that on V_f after
        // projection collapses copies... here we check the documented
        // relation: register_count(ru) <= |V| and >= 1.
        for g in sample_graphs(35, 10) {
            let (_, ru) = retime_then_unfold_projected(&g, 3);
            let regs = ru.register_count();
            assert!(regs >= 1 && regs <= g.node_count());
        }
    }

    #[test]
    fn factor_one_degenerates_to_plain_retiming() {
        for g in sample_graphs(36, 10) {
            let ur = unfold_then_retime_min(&g, 1);
            let opt = cred_retime::min_period_retiming(&g);
            assert_eq!(ur.period, opt.period);
        }
    }

    #[test]
    fn remainder_code_size_formula() {
        assert_eq!(remainder_code_size(101, 3, 8), 2 * 8);
        assert_eq!(remainder_code_size(99, 3, 8), 0);
        assert_eq!(remainder_code_size(98, 3, 10), 20);
        assert_eq!(remainder_code_size(5, 10, 4), 20);
    }

    #[test]
    fn retime_then_unfold_period_at_most_f_times_retimed() {
        // Unfolding cannot lengthen the per-f-iterations critical path
        // beyond f times the single-iteration period.
        for g in sample_graphs(37, 10) {
            let opt = cred_retime::min_period_retiming(&g);
            for f in 2..=3 {
                let ru = retime_then_unfold(&g, &opt.retiming, f);
                assert!(ru.period <= opt.period * f as u64);
            }
        }
    }
}
