//! The unfolding transformation with copy/origin provenance.

use cred_dfg::{Dfg, NodeId};

/// An unfolded DFG together with the provenance mapping back to the
/// original graph.
///
/// Copy `j` (`0 <= j < f`) of original node `u` computes original iteration
/// `f*(k-1) + j + 1` at new-loop iteration `k`. Node ids are laid out as
/// `orig_index * f + j`.
#[derive(Debug, Clone)]
pub struct Unfolded {
    /// The unfolded graph `G_f`.
    pub graph: Dfg,
    /// The unfolding factor `f >= 1`.
    pub factor: usize,
    /// `|V|` of the original graph.
    pub original_nodes: usize,
}

impl Unfolded {
    /// The id of copy `j` of original node `u`.
    #[inline]
    pub fn copy_id(&self, u: NodeId, j: usize) -> NodeId {
        debug_assert!(j < self.factor);
        NodeId((u.index() * self.factor + j) as u32)
    }

    /// The original node and copy index of an unfolded node.
    #[inline]
    pub fn origin(&self, v: NodeId) -> (NodeId, usize) {
        (
            NodeId((v.index() / self.factor) as u32),
            v.index() % self.factor,
        )
    }

    /// Iterate the copies of original node `u`.
    pub fn copies(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.factor).map(move |j| self.copy_id(u, j))
    }
}

/// Unfold `g` by factor `f`.
///
/// # Panics
/// Panics if `f == 0`.
pub fn unfold(g: &Dfg, f: usize) -> Unfolded {
    assert!(f >= 1, "unfolding factor must be at least 1");
    let mut out = Dfg::new();
    for u in g.node_ids() {
        let nd = g.node(u);
        for j in 0..f {
            out.add_node(format!("{}.{j}", nd.name), nd.time, nd.op);
        }
    }
    let copy = |u: NodeId, j: usize| NodeId((u.index() * f + j) as u32);
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let d = ed.delay as i64;
        for j in 0..f as i64 {
            // v_j reads u produced d original iterations earlier:
            // source copy j' = (j - d) mod f, delay (d - j + j') / f.
            let jp = (j - d).rem_euclid(f as i64);
            let delay = (d - j + jp) / f as i64;
            debug_assert!(delay >= 0);
            out.add_edge(
                copy(ed.src, jp as usize),
                copy(ed.dst, j as usize),
                delay as u32,
            );
        }
    }
    Unfolded {
        graph: out,
        factor: f,
        original_nodes: g.node_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::{algo, gen, DfgBuilder, OpKind, Ratio};

    fn simple_loop() -> Dfg {
        // Figure 4: A[i] = B[i-3]*3; B[i] = A[i]+7; C[i] = B[i]*2.
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Mul(3));
        let bb = b.node("B", 1, OpKind::Add(7));
        let c = b.node("C", 1, OpKind::Mul(2));
        b.edge(a, bb, 0);
        b.edge(bb, c, 0);
        b.edge(bb, a, 3);
        b.build().unwrap()
    }

    #[test]
    fn factor_one_is_isomorphic() {
        let g = simple_loop();
        let u = unfold(&g, 1);
        assert_eq!(u.graph.node_count(), g.node_count());
        assert_eq!(u.graph.edge_count(), g.edge_count());
        for e in g.edge_ids() {
            assert_eq!(u.graph.edge(e).delay, g.edge(e).delay);
        }
    }

    #[test]
    fn node_and_edge_counts_scale_by_f() {
        let g = simple_loop();
        for f in 2..=5 {
            let u = unfold(&g, f);
            assert_eq!(u.graph.node_count(), g.node_count() * f);
            assert_eq!(u.graph.edge_count(), g.edge_count() * f);
        }
    }

    #[test]
    fn delay_conservation_per_original_edge() {
        let g = simple_loop();
        for f in 1..=6 {
            let u = unfold(&g, f);
            // Edges are emitted per original edge in copy order, so chunk by f.
            let delays: Vec<u64> = u
                .graph
                .edge_ids()
                .map(|e| u.graph.edge(e).delay as u64)
                .collect();
            for (orig_e, chunk) in g.edge_ids().zip(delays.chunks(f)) {
                assert_eq!(
                    chunk.iter().sum::<u64>(),
                    g.edge(orig_e).delay as u64,
                    "delays of the {f} copies must sum to the original"
                );
            }
        }
    }

    #[test]
    fn provenance_roundtrip() {
        let g = simple_loop();
        let u = unfold(&g, 3);
        for orig in g.node_ids() {
            for j in 0..3 {
                let c = u.copy_id(orig, j);
                assert_eq!(u.origin(c), (orig, j));
                assert_eq!(u.graph.node(c).name, format!("{}.{j}", g.node(orig).name));
            }
        }
    }

    #[test]
    fn zero_delay_edges_stay_within_copy() {
        // d = 0: copy j feeds copy j with delay 0.
        let g = simple_loop();
        let u = unfold(&g, 3);
        let a = g.find_node("A").unwrap();
        let b = g.find_node("B").unwrap();
        for j in 0..3 {
            let bj = u.copy_id(b, j);
            let has = u
                .graph
                .in_edges(bj)
                .iter()
                .any(|&e| u.graph.edge(e).src == u.copy_id(a, j) && u.graph.edge(e).delay == 0);
            assert!(has, "A.{j} -> B.{j} zero-delay expected");
        }
    }

    #[test]
    fn delay_three_with_factor_three_wraps_once() {
        // B -> A delay 3, f = 3: A_j reads B_j with delay 1 for every j.
        let g = simple_loop();
        let u = unfold(&g, 3);
        let a = g.find_node("A").unwrap();
        let b = g.find_node("B").unwrap();
        for j in 0..3 {
            let aj = u.copy_id(a, j);
            let has = u
                .graph
                .in_edges(aj)
                .iter()
                .any(|&e| u.graph.edge(e).src == u.copy_id(b, j) && u.graph.edge(e).delay == 1);
            assert!(has);
        }
    }

    #[test]
    fn iteration_bound_scales_by_f() {
        // B(G_f) = f * B(G): the per-new-iteration bound covers f original
        // iterations.
        let g = gen::ring(&[1, 4, 5, 7, 10], &[0, 0, 1, 0, 1]); // B = 27/2
        for f in 1..=4usize {
            let u = unfold(&g, f);
            assert_eq!(
                algo::iteration_bound(&u.graph),
                Some(Ratio::new(27 * f as i64, 2)),
                "factor {f}"
            );
        }
    }

    #[test]
    fn unfolded_graph_is_well_formed() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 7,
                    max_delay: 3,
                    ..Default::default()
                },
            );
            for f in 1..=4 {
                let u = unfold(&g, f);
                assert!(u.graph.validate().is_ok(), "factor {f}");
            }
        }
    }

    #[test]
    fn unfolded_execution_matches_original() {
        // Semantics check: copy j of node v at new iteration k computes the
        // same value as the original node at iteration f*(k-1)+j+1.
        let g = simple_loop();
        let n_orig = 12;
        let f = 3;
        let reference = g.reference_execution(n_orig);
        let u = unfold(&g, f);
        let unf_vals = u.graph.reference_execution(n_orig / f);
        for v in g.node_ids() {
            for j in 0..f {
                let cv = u.copy_id(v, j);
                #[allow(clippy::needless_range_loop)] // index used in the formula below
                for k in 0..n_orig / f {
                    let orig_iter = f * k + j; // 0-based
                    assert_eq!(
                        unf_vals[cv.index()][k],
                        reference[v.index()][orig_iter],
                        "node {} copy {j} iteration {k}",
                        g.node(v).name
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn factor_zero_panics() {
        let g = simple_loop();
        let _ = unfold(&g, 0);
    }
}
