//! Exact minimization of the conditional-register count `|N_r|`.
//!
//! Theorem 4.3 charges one register per distinct retiming value, so among
//! all retimings achieving a period, the one with the fewest distinct
//! values yields the smallest CRED program (`L + 2 * |N_r|`). The greedy
//! [`crate::span::compact_values`] pass usually finds it; this module adds
//! an exact branch-and-bound search for small graphs:
//!
//! * values can be restricted WLOG to `{0, ..., S}` where `S` is the
//!   minimum feasible span at the period;
//! * for `k = 1, 2, ...` try every size-`k` subset of `{0..S}` as the
//!   allowed value set and solve the restricted difference-constraint
//!   CSP by backtracking with forward checking;
//! * the first feasible `k` is optimal.
//!
//! A node budget bounds the worst case; on exhaustion the greedy result is
//! returned (flagged in [`RegisterSearch::exact`]).

use crate::minperiod::constraints_for_period;
use crate::span::compact_values_with;
use crate::{ConstraintSystem, RetimeSolver, Retiming};
use cred_dfg::algo::WdMatrices;
use cred_dfg::Dfg;

/// Result of [`min_registers_retiming`].
#[derive(Debug, Clone)]
pub struct RegisterSearch {
    /// The best retiming found (normalized, legal, period-preserving).
    pub retiming: Retiming,
    /// True if the result is provably register-minimal; false when the
    /// search budget ran out and the greedy fallback was returned.
    pub exact: bool,
    /// Backtracking nodes expended.
    pub nodes_expanded: u64,
}

struct Csp<'a> {
    sys: &'a ConstraintSystem,
    /// Per-variable constraint adjacency: (other, bound, var_is_a).
    adj: Vec<Vec<(usize, i64, bool)>>,
    allowed: Vec<i64>,
    budget: u64,
    expanded: u64,
}

impl<'a> Csp<'a> {
    fn new(sys: &'a ConstraintSystem, allowed: Vec<i64>, budget: u64) -> Self {
        let mut adj = vec![Vec::new(); sys.num_vars()];
        for &(a, b, c) in sys.constraints() {
            // x_a - x_b <= c
            adj[a].push((b, c, true));
            adj[b].push((a, c, false));
        }
        Csp {
            sys,
            adj,
            allowed,
            budget,
            expanded: 0,
        }
    }

    fn search(&mut self, assignment: &mut Vec<Option<i64>>, var: usize) -> Option<bool> {
        if var == assignment.len() {
            return Some(true);
        }
        self.expanded += 1;
        if self.expanded > self.budget {
            return None; // budget exhausted: unknown
        }
        'next_value: for idx in 0..self.allowed.len() {
            let val = self.allowed[idx];
            // Check constraints against already-assigned neighbours.
            for &(other, c, var_is_a) in &self.adj[var] {
                if let Some(ov) = assignment[other] {
                    let ok = if var_is_a {
                        val - ov <= c
                    } else {
                        ov - val <= c
                    };
                    if !ok {
                        continue 'next_value;
                    }
                } else if other == var {
                    // Self-constraint: x - x <= c, i.e. c >= 0 must hold.
                    if var_is_a && c < 0 {
                        continue 'next_value;
                    }
                }
            }
            assignment[var] = Some(val);
            match self.search(assignment, var + 1) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            assignment[var] = None;
        }
        Some(false)
    }

    fn solve(&mut self) -> Option<Option<Vec<i64>>> {
        let mut assignment = vec![None; self.sys.num_vars()];
        match self.search(&mut assignment, 0) {
            Some(true) => Some(Some(assignment.into_iter().map(Option::unwrap).collect())),
            Some(false) => Some(None),
            None => None,
        }
    }
}

fn subsets_with_zero(max: i64, k: usize) -> Vec<Vec<i64>> {
    // All size-k subsets of {0..=max} containing 0 (a normalized retiming
    // always uses value 0).
    let mut out = Vec::new();
    let rest: Vec<i64> = (1..=max).collect();
    let mut idxs: Vec<usize> = (0..k.saturating_sub(1)).collect();
    if k == 0 {
        return out;
    }
    if k == 1 {
        return vec![vec![0]];
    }
    if rest.len() < k - 1 {
        return out;
    }
    loop {
        let mut s = vec![0i64];
        s.extend(idxs.iter().map(|&i| rest[i]));
        out.push(s);
        // Next combination.
        let mut i = k - 2;
        loop {
            if idxs[i] < rest.len() - (k - 1 - i) {
                idxs[i] += 1;
                for j in i + 1..k - 1 {
                    idxs[j] = idxs[j - 1] + 1;
                }
                break;
            }
            if i == 0 {
                return out;
            }
            i -= 1;
        }
    }
}

/// Find a retiming achieving period `<= c` with provably minimal
/// `|N_r|` (subject to a backtracking `budget`; on exhaustion, the greedy
/// span-minimized + compacted retiming is returned with `exact: false`).
pub fn min_registers_retiming(g: &Dfg, c: u64, budget: u64) -> Option<RegisterSearch> {
    let wd = WdMatrices::compute(g);
    // One incremental solver drives both the feasibility check and the
    // span search; the dense system is only built for the CSP itself.
    let base = RetimeSolver::new(g, &wd).min_span(c)?;
    let sys = constraints_for_period(g, &wd, c as i64);
    let greedy = compact_values_with(&sys, &base);
    let span = base.span();
    let mut expanded_total = 0u64;
    for k in 1..=greedy.register_count() {
        for allowed in subsets_with_zero(span, k) {
            let mut csp = Csp::new(&sys, allowed, budget.saturating_sub(expanded_total));
            match csp.solve() {
                Some(Some(vals)) => {
                    let mut r = Retiming::from_values(vals);
                    r.normalize();
                    debug_assert!(r.is_legal(g));
                    debug_assert!(r.register_count() <= k);
                    return Some(RegisterSearch {
                        retiming: r,
                        exact: true,
                        nodes_expanded: expanded_total + csp.expanded,
                    });
                }
                Some(None) => expanded_total += csp.expanded,
                None => {
                    // Budget gone: fall back to the greedy result.
                    return Some(RegisterSearch {
                        retiming: greedy,
                        exact: false,
                        nodes_expanded: expanded_total + csp.expanded,
                    });
                }
            }
        }
    }
    // k reached the greedy count: the greedy result is optimal.
    Some(RegisterSearch {
        retiming: greedy,
        exact: true,
        nodes_expanded: expanded_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_period_retiming;
    use cred_dfg::{algo, gen};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets_with_zero(3, 1), vec![vec![0]]);
        let s2 = subsets_with_zero(3, 2);
        assert_eq!(s2, vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        let s3 = subsets_with_zero(3, 3);
        assert_eq!(s3, vec![vec![0, 1, 2], vec![0, 1, 3], vec![0, 2, 3]]);
        assert!(subsets_with_zero(1, 3).is_empty());
    }

    #[test]
    fn exact_matches_or_beats_greedy() {
        let mut rng = StdRng::seed_from_u64(5150);
        for _ in 0..25 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 8,
                    max_delay: 3,
                    ..Default::default()
                },
            );
            let opt = min_period_retiming(&g);
            let search = min_registers_retiming(&g, opt.period, 2_000_000).unwrap();
            assert!(search.retiming.is_legal(&g));
            assert!(algo::cycle_period(&search.retiming.apply(&g)).unwrap() <= opt.period);
            let greedy = crate::span::compact_values(&g, opt.period, &opt.retiming);
            assert!(
                search.retiming.register_count() <= greedy.register_count(),
                "exact ({}) must not lose to greedy ({})",
                search.retiming.register_count(),
                greedy.register_count()
            );
            if search.exact && search.retiming.register_count() > 1 {
                // Optimality spot check: one fewer register must be
                // infeasible — re-run capped at k-1 by shrinking the span
                // subsets manually.
                let wd = WdMatrices::compute(&g);
                let sys = constraints_for_period(&g, &wd, opt.period as i64);
                let span = crate::span::min_span_retiming(&g, opt.period)
                    .unwrap()
                    .span();
                let k = search.retiming.register_count() - 1;
                for allowed in subsets_with_zero(span, k) {
                    let mut csp = Csp::new(&sys, allowed, 2_000_000);
                    assert!(
                        matches!(csp.solve(), Some(None)),
                        "a {k}-register solution exists but was not found"
                    );
                }
            }
        }
    }

    #[test]
    fn infeasible_period_is_none() {
        let g = gen::chain_with_feedback(6, 2); // bound 3
        assert!(min_registers_retiming(&g, 2, 10_000).is_none());
    }

    #[test]
    fn single_register_when_no_retiming_needed() {
        let g = gen::chain_with_feedback(4, 1);
        let s = min_registers_retiming(&g, 4, 10_000).unwrap();
        assert!(s.exact);
        assert_eq!(s.retiming.register_count(), 1); // all zeros
    }

    #[test]
    fn tiny_budget_falls_back_to_greedy() {
        let g = gen::chain_with_feedback(8, 4);
        let s = min_registers_retiming(&g, 2, 1).unwrap();
        // With a 1-node budget the search cannot finish k=1; either it
        // proves k=1 infeasible within a node or falls back.
        assert!(s.retiming.is_legal(&g));
    }
}
