//! The retiming function and its bookkeeping.

use cred_dfg::{Dfg, NodeId};
use std::collections::BTreeSet;

/// A retiming function `r : V -> Z`, stored densely by node index.
///
/// Uses the paper's sign convention: `d_r(e) = d(e) + r(src) - r(dst)`;
/// `r(v)` delays pushed forward through `v` shift every copy of `v` up by
/// `r(v)` iterations, putting `r(v)` copies into the prologue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Retiming {
    values: Vec<i64>,
}

impl Retiming {
    /// The identity (all-zero) retiming for a graph with `n` nodes.
    pub fn zero(n: usize) -> Self {
        Retiming { values: vec![0; n] }
    }

    /// Build from raw per-node values (indexed by `NodeId`).
    pub fn from_values(values: Vec<i64>) -> Self {
        Retiming { values }
    }

    /// Adapter from a modulo-schedule *stage* assignment to the retiming
    /// domain: a schedule `sigma(v) = stage(v) * II + slot(v)` that keeps
    /// every op inside one II window corresponds to the normalized
    /// retiming `r(v) = max_u stage(u) - stage(v)` (delays pushed forward
    /// through the ops of later stages; the paper's sign convention).
    /// Legality of the schedule's dependences implies legality of the
    /// retiming — `cred-exact` produces the stages, this converts them.
    pub fn from_stages(stages: &[i64]) -> Self {
        let mut r = Retiming {
            values: stages.iter().map(|&k| -k).collect(),
        };
        r.normalize();
        r
    }

    /// Number of nodes this retiming covers.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the retiming covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `r(v)`.
    #[inline]
    pub fn get(&self, v: NodeId) -> i64 {
        self.values[v.index()]
    }

    /// Set `r(v)`.
    #[inline]
    pub fn set(&mut self, v: NodeId, r: i64) {
        self.values[v.index()] = r;
    }

    /// Raw values slice.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The retimed delay of edge `e`: `d(e) + r(src) - r(dst)`.
    pub fn retimed_delay(&self, g: &Dfg, e: cred_dfg::EdgeId) -> i64 {
        let ed = g.edge(e);
        ed.delay as i64 + self.get(ed.src) - self.get(ed.dst)
    }

    /// A retiming is legal for `g` iff every retimed delay is non-negative.
    pub fn is_legal(&self, g: &Dfg) -> bool {
        assert_eq!(self.values.len(), g.node_count(), "size mismatch");
        g.edge_ids().all(|e| self.retimed_delay(g, e) >= 0)
    }

    /// Apply the retiming, producing the retimed graph `G_r`.
    ///
    /// # Panics
    /// Panics if the retiming is illegal (a retimed delay would be
    /// negative).
    pub fn apply(&self, g: &Dfg) -> Dfg {
        let mut out = g.clone();
        for e in g.edge_ids() {
            let d = self.retimed_delay(g, e);
            assert!(d >= 0, "illegal retiming: edge {e} would get delay {d}");
            out.edge_mut(e).delay = d as u32;
        }
        out
    }

    /// Normalize in place so the minimum value is zero (paper §2.2:
    /// "normalized retiming function"). Prologue/epilogue sizes are only
    /// meaningful for normalized retimings.
    pub fn normalize(&mut self) {
        if let Some(&min) = self.values.iter().min() {
            for v in &mut self.values {
                *v -= min;
            }
        }
    }

    /// A normalized copy.
    pub fn normalized(&self) -> Self {
        let mut c = self.clone();
        c.normalize();
        c
    }

    /// True if the minimum value is zero (or the retiming is empty).
    pub fn is_normalized(&self) -> bool {
        self.values.iter().min().is_none_or(|&m| m == 0)
    }

    /// `M_r = max_u r(u)` (meaningful after normalization; for a normalized
    /// retiming this is also the span).
    pub fn max_value(&self) -> i64 {
        self.values.iter().copied().max().unwrap_or(0)
    }

    /// `max r - min r`: the prologue depth after normalization.
    pub fn span(&self) -> i64 {
        match (self.values.iter().max(), self.values.iter().min()) {
            (Some(&mx), Some(&mn)) => mx - mn,
            _ => 0,
        }
    }

    /// The set `N_r` of distinct retiming values. Its cardinality is the
    /// number of conditional registers CRED needs (Theorem 4.3).
    pub fn distinct_values(&self) -> BTreeSet<i64> {
        self.values.iter().copied().collect()
    }

    /// `|N_r|` — conditional registers required for total code reduction.
    pub fn register_count(&self) -> usize {
        self.distinct_values().len()
    }

    /// Number of instruction copies in the prologue of the software-
    /// pipelined loop: `sum_v r(v)` (requires a normalized retiming).
    pub fn prologue_size(&self) -> i64 {
        debug_assert!(self.is_normalized());
        self.values.iter().sum()
    }

    /// Number of instruction copies in the epilogue: `sum_v (M_r - r(v))`
    /// (requires a normalized retiming).
    pub fn epilogue_size(&self) -> i64 {
        debug_assert!(self.is_normalized());
        let m = self.max_value();
        self.values.iter().map(|&r| m - r).sum()
    }

    /// Code size of the software-pipelined loop program, counting every
    /// node copy in prologue + kernel + epilogue (unit-size instructions):
    /// `L + |V| * M_r` — the paper's Table 1 "Ret." column.
    pub fn pipelined_code_size(&self, loop_body_size: usize) -> i64 {
        debug_assert!(self.is_normalized());
        loop_body_size as i64 + self.prologue_size() + self.epilogue_size()
    }

    /// Pointwise sum with another retiming (composition of two retimings of
    /// the same graph).
    pub fn compose(&self, other: &Retiming) -> Retiming {
        assert_eq!(self.len(), other.len(), "size mismatch");
        Retiming {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::{algo, DfgBuilder};

    fn figure1a() -> (Dfg, NodeId, NodeId) {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 0);
        b.edge(bb, a, 2);
        (b.build().unwrap(), a, bb)
    }

    #[test]
    fn figure1_retiming_is_legal_and_shortens_period() {
        let (g, a, _) = figure1a();
        let mut r = Retiming::zero(2);
        r.set(a, 1);
        assert!(r.is_legal(&g));
        let gr = r.apply(&g);
        // Figure 1(b): both edges now carry one delay; period drops 2 -> 1.
        assert_eq!(algo::cycle_period(&g), Some(2));
        assert_eq!(algo::cycle_period(&gr), Some(1));
        for e in gr.edge_ids() {
            assert_eq!(gr.edge(e).delay, 1);
        }
    }

    #[test]
    fn illegal_retiming_detected() {
        let (g, _, bb) = figure1a();
        let mut r = Retiming::zero(2);
        r.set(bb, 1); // A->B edge would get delay -1
        assert!(!r.is_legal(&g));
    }

    #[test]
    #[should_panic(expected = "illegal retiming")]
    fn apply_panics_on_illegal() {
        let (g, _, bb) = figure1a();
        let mut r = Retiming::zero(2);
        r.set(bb, 1);
        let _ = r.apply(&g);
    }

    #[test]
    fn cycle_delay_count_is_conserved() {
        let (g, a, _) = figure1a();
        let mut r = Retiming::zero(2);
        r.set(a, 1);
        let gr = r.apply(&g);
        assert_eq!(g.total_delays(), gr.total_delays()); // single cycle
    }

    #[test]
    fn normalize_shifts_min_to_zero() {
        let mut r = Retiming::from_values(vec![-2, 0, 3]);
        assert!(!r.is_normalized());
        r.normalize();
        assert_eq!(r.values(), &[0, 2, 5]);
        assert!(r.is_normalized());
        assert_eq!(r.max_value(), 5);
        assert_eq!(r.span(), 5);
    }

    #[test]
    fn normalization_preserves_retimed_delays() {
        let (g, a, bb) = figure1a();
        let mut r = Retiming::zero(2);
        r.set(a, -1);
        r.set(bb, -2);
        let norm = r.normalized();
        for e in g.edge_ids() {
            assert_eq!(r.retimed_delay(&g, e), norm.retimed_delay(&g, e));
        }
    }

    #[test]
    fn prologue_epilogue_sizes() {
        // Figure 3: r = {A:3, B:2, C:2, D:1, E:0}, 5 nodes.
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        assert_eq!(r.max_value(), 3);
        assert_eq!(r.prologue_size(), 8); // 3+2+2+1+0
        assert_eq!(r.epilogue_size(), 7); // 0+1+1+2+3
        assert_eq!(r.pipelined_code_size(5), 20);
        assert_eq!(r.register_count(), 4); // {0,1,2,3}
    }

    #[test]
    fn table1_code_size_formula() {
        // S_ret = L + |V| * M_r when every node is one instruction.
        for (l, m) in [(8usize, 1i64), (11, 2), (15, 3), (26, 2)] {
            // A uniform retiming distribution: values 0..=m round-robin.
            let vals: Vec<i64> = (0..l).map(|i| (i as i64) % (m + 1)).collect();
            let r = Retiming::from_values(vals);
            // prologue + epilogue = |V| * M_r regardless of distribution.
            assert_eq!(r.prologue_size() + r.epilogue_size(), l as i64 * m,);
            assert_eq!(r.pipelined_code_size(l), (l as i64) * (m + 1));
        }
    }

    #[test]
    fn distinct_values_and_registers() {
        let r = Retiming::from_values(vec![0, 3, 4, 0, 3]);
        let distinct: Vec<i64> = r.distinct_values().into_iter().collect();
        assert_eq!(distinct, vec![0, 3, 4]);
        assert_eq!(r.register_count(), 3);
    }

    #[test]
    fn from_stages_negates_and_normalizes() {
        let r = Retiming::from_stages(&[0, 1, 3]);
        assert_eq!(r.values(), &[3, 2, 0]);
        assert!(r.is_normalized());
    }

    #[test]
    fn compose_adds_pointwise() {
        let a = Retiming::from_values(vec![1, 0, 2]);
        let b = Retiming::from_values(vec![0, 1, 1]);
        assert_eq!(a.compose(&b).values(), &[1, 1, 3]);
    }

    #[test]
    fn composition_of_legal_retimings_applies_sequentially() {
        let (g, a, bb) = figure1a();
        let mut r1 = Retiming::zero(2);
        r1.set(a, 1);
        let g1 = r1.apply(&g);
        let mut r2 = Retiming::zero(2);
        r2.set(bb, 1);
        assert!(r2.is_legal(&g1));
        let g2 = r2.apply(&g1);
        let composed = r1.compose(&r2).apply(&g);
        for e in g.edge_ids() {
            assert_eq!(g2.edge(e).delay, composed.edge(e).delay);
        }
    }
}
