//! Post-passes shaping a feasible retiming for code size:
//!
//! * [`min_span_retiming`] — among all retimings achieving a period,
//!   minimize the span `M_r = max r - min r`. The pipelined code size is
//!   `L + |V| * M_r`, so minimizing `M_r` minimizes the *un-reduced*
//!   software-pipelined code size, and also the `(M_r + f) * L` term of the
//!   retime-then-unfold size (Theorem 4.5).
//! * [`compact_values`] — greedily merge retiming values to reduce
//!   `|N_r|`, the number of conditional registers CRED needs (Theorem 4.3),
//!   without breaking legality or the period.

use crate::minperiod::constraints_for_period;
use crate::{ConstraintSystem, Retiming};
use cred_dfg::algo::WdMatrices;
use cred_dfg::Dfg;

/// Find a retiming achieving cycle period `<= c` with the *minimum possible
/// span* `max r - min r`, or `None` if `c` is infeasible.
///
/// Implemented as a binary search on the span `s`: each probe adds the
/// span bound to the period-feasibility system and re-solves, so the
/// result is exact, not heuristic. Runs on the warm-started incremental
/// solver ([`crate::RetimeSolver`]).
pub fn min_span_retiming(g: &Dfg, c: u64) -> Option<Retiming> {
    let wd = WdMatrices::compute(g);
    min_span_retiming_with(g, &wd, c)
}

/// [`min_span_retiming`] with a precomputed W/D matrix, so callers running
/// several retiming passes over the same graph pay for Floyd–Warshall once.
pub fn min_span_retiming_with(g: &Dfg, wd: &WdMatrices, c: u64) -> Option<Retiming> {
    crate::RetimeSolver::new(g, wd).min_span(c)
}

/// The dense reference path of [`min_span_retiming_with`]: every span
/// probe materializes the full `O(V^2)` pairwise constraints
/// `r(u) - r(v) <= s` and solves from scratch with Bellman–Ford. Kept as
/// the differential-testing oracle; bit-identical to the incremental path.
pub fn min_span_retiming_reference(g: &Dfg, wd: &WdMatrices, c: u64) -> Option<Retiming> {
    let base = constraints_for_period(g, wd, c as i64);
    let base_sol = base.solve()?;
    let mut base_r = Retiming::from_values(base_sol);
    base_r.normalize();
    let mut lo = 0i64;
    let mut hi = base_r.span(); // feasible by construction
    let mut best = base_r;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match solve_with_span(g, wd, c as i64, mid) {
            Some(r) => {
                best = r;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    debug_assert!(best.is_legal(g));
    Some(best)
}

fn solve_with_span(g: &Dfg, wd: &WdMatrices, c: i64, span: i64) -> Option<Retiming> {
    let n = g.node_count();
    let mut sys = constraints_for_period(g, wd, c);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                sys.add(u, v, span);
            }
        }
    }
    let sol = sys.solve()?;
    let mut r = Retiming::from_values(sol);
    r.normalize();
    debug_assert!(r.span() <= span);
    Some(r)
}

/// Engine-path variant of [`min_span_retiming_with`]: identical results,
/// cheaper probes (used by the exploration engine's memoized plans).
///
/// `base` must be the solver's (normalized) solution of the plain
/// period-`c` system — exactly what [`crate::retime_to_period_with`]
/// returns for the same `(g, wd, c)` — so the base solve is skipped; the
/// span search reconstructs the raw fixpoint from `base` and warm-starts
/// every probe from it. Each probe encodes the all-pairs constraints
/// `r(u) - r(v) <= s` through one auxiliary variable `z` with
/// `r(u) - z <= 0` and `z - r(v) <= s` (`2|V|` edges instead of `|V|^2`).
/// Compositions of the two aux edges reproduce every dense span edge and
/// vice versa, and the extension `z = max r` shows both systems bound the
/// real variables identically, so the solver's pointwise-maximal solution
/// restricted to the real nodes — and hence the returned retiming — is
/// the same, bit for bit (see `from_base_variant_is_bit_identical`).
pub fn min_span_retiming_from_base(g: &Dfg, wd: &WdMatrices, c: u64, base: &Retiming) -> Retiming {
    crate::RetimeSolver::new(g, wd).min_span_from_base(c, base)
}

/// Greedily reduce the number of distinct retiming values of `r` while
/// keeping every constraint of the period-`c` system satisfied.
///
/// For each node (most-isolated values first), try to move its value to
/// another value already in use, preferring the most popular ones; accept
/// a move if the whole assignment still satisfies the system. Runs to a
/// fixpoint. Heuristic: minimizing `|N_r|` exactly is a set-cover-like
/// problem; the greedy pass recovers the common cases (e.g. a stray value
/// used by one node that can slide to a neighbour).
pub fn compact_values(g: &Dfg, c: u64, r: &Retiming) -> Retiming {
    let wd = WdMatrices::compute(g);
    compact_values_wd(g, &wd, c, r)
}

/// [`compact_values`] with a precomputed W/D matrix (see
/// [`min_span_retiming_with`]).
pub fn compact_values_wd(g: &Dfg, wd: &WdMatrices, c: u64, r: &Retiming) -> Retiming {
    let sys = constraints_for_period(g, wd, c as i64);
    compact_values_with(&sys, r)
}

/// [`compact_values`] against an explicit constraint system (used by tests
/// and by callers that already built one).
pub fn compact_values_with(sys: &ConstraintSystem, r: &Retiming) -> Retiming {
    let mut vals = r.values().to_vec();
    debug_assert!(sys.satisfied_by(&vals));
    loop {
        let mut counts = std::collections::BTreeMap::<i64, usize>::new();
        for &v in &vals {
            *counts.entry(v).or_insert(0) += 1;
        }
        if counts.len() <= 1 {
            break;
        }
        // Try to eliminate the rarest value entirely by moving each of its
        // nodes to some other in-use value.
        let mut order: Vec<(usize, i64)> = counts.iter().map(|(&v, &c)| (c, v)).collect();
        order.sort_unstable();
        let mut improved = false;
        'outer: for &(_, victim) in &order {
            let movers: Vec<usize> = (0..vals.len()).filter(|&i| vals[i] == victim).collect();
            let targets: Vec<i64> = {
                let mut t: Vec<(usize, i64)> = counts
                    .iter()
                    .filter(|(&v, _)| v != victim)
                    .map(|(&v, &c)| (c, v))
                    .collect();
                t.sort_unstable_by(|a, b| b.cmp(a)); // most popular first
                t.into_iter().map(|(_, v)| v).collect()
            };
            let snapshot = vals.clone();
            for &t in &targets {
                for &i in &movers {
                    vals[i] = t;
                }
                if sys.satisfied_by(&vals) {
                    improved = true;
                    break 'outer;
                }
                vals.copy_from_slice(&snapshot);
            }
        }
        if !improved {
            break;
        }
    }
    let mut out = Retiming::from_values(vals);
    out.normalize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minperiod::min_period_retiming;
    use cred_dfg::{algo, gen, DfgBuilder};

    #[test]
    fn min_span_matches_period() {
        let g = gen::chain_with_feedback(6, 3); // bound 2
        let r = min_span_retiming(&g, 2).expect("period 2 feasible");
        assert_eq!(algo::cycle_period(&r.apply(&g)), Some(2));
    }

    #[test]
    fn min_span_never_exceeds_default_solution() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 8,
                    max_delay: 3,
                    ..Default::default()
                },
            );
            let opt = min_period_retiming(&g);
            let tight = min_span_retiming(&g, opt.period).unwrap();
            assert!(tight.span() <= opt.retiming.span());
            assert!(tight.is_legal(&g));
            assert_eq!(
                algo::cycle_period(&tight.apply(&g)),
                Some(opt.period),
                "span minimization must not lose the period"
            );
        }
    }

    #[test]
    fn from_base_variant_is_bit_identical() {
        use crate::retime_to_period_with;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..25 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 9,
                    max_delay: 3,
                    ..Default::default()
                },
            );
            let wd = WdMatrices::compute(&g);
            let opt = min_period_retiming(&g);
            // Probe both the optimal period and a relaxed one, pitting the
            // incremental aux-variable path against the dense oracle.
            for c in [opt.period, opt.period + 1] {
                let reference = min_span_retiming_reference(&g, &wd, c).unwrap();
                let base = retime_to_period_with(&g, &wd, c).unwrap();
                let fast = min_span_retiming_from_base(&g, &wd, c, &base);
                assert_eq!(reference, fast, "period {c}");
                assert_eq!(reference, min_span_retiming_with(&g, &wd, c).unwrap());
            }
        }
    }

    #[test]
    fn min_span_infeasible_period_is_none() {
        let g = gen::chain_with_feedback(6, 2); // bound 3
        assert!(min_span_retiming(&g, 2).is_none());
    }

    #[test]
    fn zero_span_when_no_retiming_needed() {
        let g = gen::chain_with_feedback(3, 1);
        let r = min_span_retiming(&g, 3).unwrap();
        assert_eq!(r.span(), 0);
    }

    #[test]
    fn compact_values_reduces_register_count() {
        // A feed-forward diamond where the default solution spreads values
        // but period allows collapsing them.
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let x = b.unit("X");
        let y = b.unit("Y");
        let z = b.unit("Z");
        b.edge(a, x, 1);
        b.edge(x, y, 1);
        b.edge(y, z, 1);
        let g = b.build().unwrap();
        // Hand-build a legal-but-wasteful retiming for period 1:
        // values {0, 1, 2, 3} all distinct.
        let r = Retiming::from_values(vec![3, 2, 1, 0]);
        assert!(r.is_legal(&g));
        let compacted = compact_values(&g, 1, &r);
        assert!(compacted.register_count() <= r.register_count());
        assert!(compacted.is_legal(&g));
        // Period 1 is kept.
        assert!(algo::cycle_period(&compacted.apply(&g)).unwrap() <= 1);
    }

    #[test]
    fn compact_values_preserves_feasibility_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 10,
                    max_delay: 2,
                    ..Default::default()
                },
            );
            let opt = min_period_retiming(&g);
            let compacted = compact_values(&g, opt.period, &opt.retiming);
            assert!(compacted.is_legal(&g));
            assert!(algo::cycle_period(&compacted.apply(&g)).unwrap() <= opt.period);
            assert!(compacted.register_count() <= opt.retiming.register_count());
        }
    }
}
