//! Incremental difference-constraint engine with checkpoint/rollback.
//!
//! This is the propagation core `cred-exact`'s branch-and-bound scheduler
//! runs its dependence side on, factored into `cred-retime` because it is
//! the same mathematical object the retiming solvers work over: a system
//! of constraints `x_v - x_u >= w` is feasible iff its constraint graph
//! (edge `u -> v` of weight `w`) has no positive-weight cycle, exactly the
//! dual of the `r(u) - r(v) <= d(e) - 1`-style systems `ConstraintSystem`
//! and `RetimeSolver` solve in batch.
//!
//! The difference from those solvers is the *access pattern*: a
//! backtracking search asserts constraints one at a time, learns that some
//! branch is infeasible, and must cheaply restore the exact solver state
//! of an earlier decision level — the shape of difference-logic theory
//! solvers inside DPLL(T) SMT cores. [`DiffEngine`] therefore maintains a
//! satisfying assignment under single-constraint *assertion* via
//! queue-based incremental relaxation (values only ever increase), records
//! every value change on a trail, and exposes [`DiffEngine::checkpoint`] /
//! [`DiffEngine::rollback`] to unwind to any earlier level in time
//! proportional to the work being undone.
//!
//! ## Why assertion-time cycle detection is sound
//!
//! The engine keeps the invariant that `val` satisfies every asserted
//! constraint. Asserting `x_v - x_u >= w` when `val[v] < val[u] + w`
//! raises `val[v]` and propagates: a constraint can only become violated
//! because its source node was raised, so every propagation chain traces
//! back to the new edge `u -> v`. If the old system was feasible, any
//! positive cycle in the new system must use the new edge, i.e. pass
//! through `u` — so propagation raising `u` *is* the infeasibility proof,
//! and the parent chain from `u` back to `v` plus the new edge is a
//! positive cycle ([`PositiveCycle`]), returned as a checkable witness.
//! Conversely if `u` is never raised, relaxation converges to the
//! longest-path fixpoint (values are bounded by longest paths from `v`,
//! which exist without positive cycles) and the invariant is restored.

use std::collections::VecDeque;

/// A certified proof that a difference-constraint system is infeasible:
/// a cycle of asserted constraints `x_{nodes[i+1]} - x_{nodes[i]} >=
/// weights[i]` (indices mod the cycle length) whose weights sum to
/// `weight > 0` — summing the constraints telescopes the left sides to
/// zero, so `0 >= weight` is a contradiction. The witness is checkable
/// without re-running the solver: verify each hop was asserted and add
/// up the weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositiveCycle {
    /// The nodes on the cycle, in constraint order, each listed once.
    pub nodes: Vec<u32>,
    /// `weights[i]` is the weight of the constraint from `nodes[i]` to
    /// `nodes[(i + 1) % len]`. Same length as `nodes`.
    pub weights: Vec<i64>,
    /// Total weight of the cycle's constraints; always `> 0`.
    pub weight: i64,
}

#[derive(Debug, Clone, Copy)]
struct Con {
    u: u32,
    v: u32,
    w: i64,
}

/// Undo record: `node` had `val`/`parent` before it was raised.
#[derive(Debug, Clone, Copy)]
struct Trail {
    node: u32,
    val: i64,
    parent: Option<u32>,
}

/// A restore point for [`DiffEngine::rollback`]. Checkpoints must be
/// rolled back in LIFO order (a rollback invalidates every checkpoint
/// taken after the one being restored).
#[derive(Debug, Clone, Copy)]
pub struct Checkpoint {
    cons_len: usize,
    trail_len: usize,
}

/// Incremental solver for difference constraints `x_v - x_u >= w` over
/// variables `x_0 .. x_{n-1}`, maintaining a satisfying assignment (the
/// least one above the initial all-zero point) under assertion and
/// supporting trail-based rollback. See the module docs for the
/// algorithm; `cred-exact` drives this during branch-and-bound, and its
/// scratch (`Vec`s, queue) is reused across II ladder rungs via
/// [`DiffEngine::reset`].
#[derive(Debug, Default)]
pub struct DiffEngine {
    val: Vec<i64>,
    /// Constraint id that last raised each node (propagation parent).
    parent: Vec<Option<u32>>,
    /// Outgoing constraint ids per source node.
    out: Vec<Vec<u32>>,
    cons: Vec<Con>,
    trail: Vec<Trail>,
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    /// Scratch for cycle extraction.
    mark: Vec<bool>,
}

impl DiffEngine {
    /// An engine over `n` variables, all starting at value 0.
    pub fn new(n: usize) -> Self {
        let mut e = Self::default();
        e.reset(n);
        e
    }

    /// Clear all constraints and values, resize to `n` variables, and
    /// keep the allocations (the warm-scratch idiom `RetimeSolver` uses).
    pub fn reset(&mut self, n: usize) {
        self.val.clear();
        self.val.resize(n, 0);
        self.parent.clear();
        self.parent.resize(n, None);
        for adj in &mut self.out {
            adj.clear();
        }
        self.out.resize(n, Vec::new());
        self.out.truncate(n);
        self.cons.clear();
        self.trail.clear();
        self.queue.clear();
        self.in_queue.clear();
        self.in_queue.resize(n, false);
        self.mark.clear();
        self.mark.resize(n, false);
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.val.len()
    }

    /// True if the engine has no variables.
    pub fn is_empty(&self) -> bool {
        self.val.is_empty()
    }

    /// Current value of `x_v`. The values form the least satisfying
    /// assignment with every variable `>= 0` — for `cred-exact` these are
    /// the pipeline stage numbers directly.
    #[inline]
    pub fn value(&self, v: usize) -> i64 {
        self.val[v]
    }

    /// The full current assignment.
    pub fn values(&self) -> &[i64] {
        &self.val
    }

    /// Number of constraints currently asserted.
    pub fn constraint_count(&self) -> usize {
        self.cons.len()
    }

    /// Take a restore point at the current decision level.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            cons_len: self.cons.len(),
            trail_len: self.trail.len(),
        }
    }

    /// Restore the engine to `cp`: retract every constraint asserted
    /// after it and unwind every value change, in reverse order.
    pub fn rollback(&mut self, cp: Checkpoint) {
        debug_assert!(cp.cons_len <= self.cons.len());
        debug_assert!(cp.trail_len <= self.trail.len());
        while self.trail.len() > cp.trail_len {
            let t = self.trail.pop().expect("trail length checked");
            self.val[t.node as usize] = t.val;
            self.parent[t.node as usize] = t.parent;
        }
        while self.cons.len() > cp.cons_len {
            let c = self.cons.pop().expect("cons length checked");
            let popped = self.out[c.u as usize].pop();
            debug_assert_eq!(popped, Some(self.cons.len() as u32));
        }
    }

    /// Assert `x_v - x_u >= w`.
    ///
    /// Returns `Ok(())` if the system stays feasible (the maintained
    /// assignment now satisfies the new constraint too). On infeasibility
    /// returns the positive-cycle witness and leaves the engine exactly
    /// as it was before the call — a failed assertion never needs a
    /// caller-side rollback.
    pub fn assert_ge(&mut self, u: usize, v: usize, w: i64) -> Result<(), PositiveCycle> {
        debug_assert!(u < self.val.len() && v < self.val.len());
        if u == v {
            // x_u - x_u >= w: vacuous for w <= 0, a one-node positive
            // cycle otherwise.
            if w <= 0 {
                return Ok(());
            }
            return Err(PositiveCycle {
                nodes: vec![u as u32],
                weights: vec![w],
                weight: w,
            });
        }
        let cp = self.checkpoint();
        let cid = self.cons.len() as u32;
        self.cons.push(Con {
            u: u as u32,
            v: v as u32,
            w,
        });
        self.out[u].push(cid);
        if self.val[v] >= self.val[u] + w {
            return Ok(()); // already satisfied; nothing to propagate
        }
        self.raise(v as u32, self.val[u] + w, Some(cid));
        // Queue-based relaxation. Every queued node was raised; only its
        // outgoing constraints can have become violated. (The queue can
        // hold leftovers from a prior early-terminated propagation.)
        self.queue.clear();
        self.in_queue.iter_mut().for_each(|b| *b = false);
        self.queue.push_back(v as u32);
        self.in_queue[v] = true;
        while let Some(x) = self.queue.pop_front() {
            self.in_queue[x as usize] = false;
            for i in 0..self.out[x as usize].len() {
                let c = self.cons[self.out[x as usize][i] as usize];
                let target = self.val[c.u as usize] + c.w;
                if self.val[c.v as usize] < target {
                    if c.v as usize == u {
                        // Propagation reached the new edge's source:
                        // positive cycle through the new constraint.
                        let cycle = self.extract_cycle(u as u32, v as u32, w, c);
                        self.rollback(cp);
                        return Err(cycle);
                    }
                    self.raise(c.v, target, Some(self.out[x as usize][i]));
                    if !self.in_queue[c.v as usize] {
                        self.queue.push_back(c.v);
                        self.in_queue[c.v as usize] = true;
                    }
                }
            }
        }
        Ok(())
    }

    fn raise(&mut self, node: u32, to: i64, via: Option<u32>) {
        self.trail.push(Trail {
            node,
            val: self.val[node as usize],
            parent: self.parent[node as usize],
        });
        self.val[node as usize] = to;
        self.parent[node as usize] = via;
    }

    /// Build the positive-cycle witness once propagation has hit `u`, the
    /// source of the just-asserted constraint `u -> v` (weight `w`), via
    /// the violated constraint `last` (whose `v` is `u`).
    ///
    /// Walk the propagation parents backward from `last.u`; every raised
    /// node's parent source was itself raised in this wave, so the chain
    /// leads back to `v` (the first node raised) and, with the new edge,
    /// closes the cycle `u -> v -> ... -> last.u -> u`. If the chain
    /// revisits a node first, that parent loop is itself a positive cycle
    /// (some hop on it is strictly violated at observation time — the
    /// usual Bellman–Ford cycle-extraction argument) and is returned
    /// instead. Either way `rev` records each walked node with the weight
    /// of its *outgoing* constraint along the cycle direction.
    fn extract_cycle(&mut self, u: u32, v: u32, w: i64, last: Con) -> PositiveCycle {
        let mut rev: Vec<(u32, i64)> = Vec::new(); // (node, out-weight on cycle)
        let mut cur = last.u;
        let mut out_weight = last.w;
        let (mut nodes, mut weights): (Vec<u32>, Vec<i64>);
        loop {
            if cur == v {
                // Cycle: u -(w)-> v -(out_weight)-> ... -> last.u -(last.w)-> u.
                nodes = Vec::with_capacity(rev.len() + 2);
                weights = Vec::with_capacity(rev.len() + 2);
                nodes.push(u);
                weights.push(w);
                nodes.push(v);
                weights.push(out_weight);
                for &(n, wn) in rev.iter().rev() {
                    nodes.push(n);
                    weights.push(wn);
                }
                break;
            }
            if self.mark[cur as usize] {
                // Parent-chain loop through `cur`: cur -(out_weight)->
                // (node walked just before revisiting) -> ... -> cur.
                let start = rev
                    .iter()
                    .position(|&(n, _)| n == cur)
                    .expect("marked node is on the recorded path");
                nodes = Vec::with_capacity(rev.len() - start);
                weights = Vec::with_capacity(rev.len() - start);
                nodes.push(cur);
                weights.push(out_weight);
                for &(n, wn) in rev[start + 1..].iter().rev() {
                    nodes.push(n);
                    weights.push(wn);
                }
                break;
            }
            self.mark[cur as usize] = true;
            rev.push((cur, out_weight));
            let pcid = self.parent[cur as usize].expect("raised node has a parent");
            let pc = self.cons[pcid as usize];
            debug_assert_eq!(pc.v, cur);
            out_weight = pc.w;
            cur = pc.u;
        }
        for &(n, _) in &rev {
            self.mark[n as usize] = false;
        }
        let weight: i64 = weights.iter().sum();
        debug_assert!(weight > 0, "extracted cycle must be positive");
        PositiveCycle {
            nodes,
            weights,
            weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Check a witness arithmetically against the constraints it claims.
    fn check_cycle(cy: &PositiveCycle, asserted: &[(usize, usize, i64)]) {
        assert!(cy.weight > 0);
        let k = cy.nodes.len();
        assert_eq!(cy.weights.len(), k);
        let mut total = 0i64;
        for i in 0..k {
            let a = cy.nodes[i] as usize;
            let b = cy.nodes[(i + 1) % k] as usize;
            let w = cy.weights[i];
            assert!(
                asserted
                    .iter()
                    .any(|&(u, v, ww)| u == a && v == b && ww == w),
                "witness hop x_{b} - x_{a} >= {w} was never asserted"
            );
            total += w;
        }
        assert_eq!(total, cy.weight);
    }

    #[test]
    fn chain_propagates_values() {
        let mut e = DiffEngine::new(3);
        e.assert_ge(0, 1, 2).unwrap(); // x1 >= x0 + 2
        e.assert_ge(1, 2, 3).unwrap(); // x2 >= x1 + 3
        assert_eq!(e.values(), &[0, 2, 5]);
        // Tighten the first hop; the chain re-propagates.
        e.assert_ge(0, 1, 4).unwrap();
        assert_eq!(e.values(), &[0, 4, 7]);
    }

    #[test]
    fn zero_weight_cycle_is_feasible() {
        let mut e = DiffEngine::new(2);
        e.assert_ge(0, 1, 3).unwrap();
        e.assert_ge(1, 0, -3).unwrap();
        assert_eq!(e.value(1) - e.value(0), 3);
    }

    #[test]
    fn positive_cycle_detected_with_witness() {
        let mut e = DiffEngine::new(3);
        let cons = [(0usize, 1usize, 1i64), (1, 2, 1), (2, 0, -1)];
        e.assert_ge(0, 1, 1).unwrap();
        e.assert_ge(1, 2, 1).unwrap();
        let before = e.values().to_vec();
        let cy = e.assert_ge(2, 0, -1).unwrap_err();
        check_cycle(&cy, &cons);
        // Failed assertion must leave no trace.
        assert_eq!(e.values(), &before[..]);
        assert_eq!(e.constraint_count(), 2);
        // And the engine stays usable.
        e.assert_ge(2, 0, -2).unwrap();
    }

    #[test]
    fn self_loop_positive_is_infeasible() {
        let mut e = DiffEngine::new(1);
        e.assert_ge(0, 0, 0).unwrap();
        e.assert_ge(0, 0, -5).unwrap();
        let cy = e.assert_ge(0, 0, 2).unwrap_err();
        assert_eq!(cy.nodes, vec![0]);
        assert_eq!(cy.weight, 2);
    }

    #[test]
    fn rollback_restores_values_and_constraints() {
        let mut e = DiffEngine::new(3);
        e.assert_ge(0, 1, 1).unwrap();
        let cp = e.checkpoint();
        e.assert_ge(1, 2, 5).unwrap();
        e.assert_ge(0, 1, 7).unwrap();
        assert_eq!(e.values(), &[0, 7, 12]);
        e.rollback(cp);
        assert_eq!(e.values(), &[0, 1, 0]);
        assert_eq!(e.constraint_count(), 1);
        // A constraint retracted by rollback no longer propagates.
        e.assert_ge(0, 1, 2).unwrap();
        assert_eq!(e.values(), &[0, 2, 0]);
    }

    #[test]
    fn reset_reuses_allocations() {
        let mut e = DiffEngine::new(2);
        e.assert_ge(0, 1, 9).unwrap();
        e.reset(4);
        assert_eq!(e.len(), 4);
        assert_eq!(e.values(), &[0, 0, 0, 0]);
        assert_eq!(e.constraint_count(), 0);
        e.assert_ge(3, 0, 1).unwrap();
        assert_eq!(e.value(0), 1);
    }

    /// Randomized cross-check against a dense Bellman–Ford ground truth:
    /// feasibility must agree at every step, witnesses must check, and
    /// rollback must behave like replaying the surviving prefix.
    #[test]
    fn randomized_against_dense_reference() {
        // Tiny deterministic LCG; no external RNG needed here.
        let mut state = 0x12345678u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..200 {
            let n = 2 + next(5) as usize;
            let mut e = DiffEngine::new(n);
            let mut kept: Vec<(usize, usize, i64)> = Vec::new();
            for _ in 0..12 {
                let u = next(n as u64) as usize;
                let v = next(n as u64) as usize;
                let w = next(7) as i64 - 3;
                let feasible_with = dense_feasible(n, kept.iter().copied().chain([(u, v, w)]));
                match e.assert_ge(u, v, w) {
                    Ok(()) => {
                        assert!(feasible_with, "engine accepted an infeasible system");
                        kept.push((u, v, w));
                        for (i, (a, b, ww)) in kept.iter().copied().enumerate() {
                            assert!(
                                e.value(b) - e.value(a) >= ww,
                                "constraint {i} violated by maintained assignment"
                            );
                        }
                    }
                    Err(cy) => {
                        assert!(!feasible_with, "engine rejected a feasible system");
                        let mut all = kept.clone();
                        all.push((u, v, w));
                        check_cycle(&cy, &all);
                    }
                }
            }
        }
    }

    fn dense_feasible(n: usize, cons: impl IntoIterator<Item = (usize, usize, i64)>) -> bool {
        let cons: Vec<_> = cons.into_iter().collect();
        let mut val = vec![0i64; n];
        for _ in 0..=cons.len() * n {
            let mut changed = false;
            for &(u, v, w) in &cons {
                if val[v] < val[u] + w {
                    val[v] = val[u] + w;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
        }
        false
    }
}
