//! Difference-constraint systems solved by Bellman–Ford.
//!
//! Retiming feasibility reduces to systems of constraints
//! `x[a] - x[b] <= c`. Such a system is satisfiable iff the constraint
//! graph (edge `b -> a` with weight `c`, plus a zero-weight virtual source
//! to every node) has no negative cycle; shortest distances from the source
//! are then a solution.

use std::collections::HashMap;

/// A system of difference constraints over `n` variables.
///
/// Constraints are deduplicated at [`add`](ConstraintSystem::add) time:
/// for each `(a, b)` pair only the tightest (smallest) bound is kept, in
/// first-insertion order, so dense systems (the `O(V^2)` period
/// constraints of retiming, which overlap the legality edges) shrink
/// before any solver sees them.
#[derive(Debug, Clone)]
pub struct ConstraintSystem {
    n: usize,
    /// `(a, b, c)` encodes `x[a] - x[b] <= c`; at most one entry per
    /// `(a, b)` pair, holding the tightest bound added so far.
    constraints: Vec<(usize, usize, i64)>,
    /// `(a, b)` -> index into `constraints`.
    index: HashMap<(usize, usize), usize>,
}

impl ConstraintSystem {
    /// An empty system over `n` variables.
    pub fn new(n: usize) -> Self {
        ConstraintSystem {
            n,
            constraints: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if no constraints have been added.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The raw constraint triples `(a, b, c)` meaning `x[a] - x[b] <= c`,
    /// one per `(a, b)` pair, in first-insertion order (deterministic).
    pub fn constraints(&self) -> &[(usize, usize, i64)] {
        &self.constraints
    }

    /// Add `x[a] - x[b] <= c`. A repeated `(a, b)` pair tightens the
    /// stored bound in place (`min`) instead of growing the system.
    pub fn add(&mut self, a: usize, b: usize, c: i64) {
        assert!(a < self.n && b < self.n, "variable out of range");
        match self.index.entry((a, b)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let slot = &mut self.constraints[*e.get()].2;
                *slot = (*slot).min(c);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.constraints.len());
                self.constraints.push((a, b, c));
            }
        }
    }

    /// Check whether `x` satisfies every constraint.
    pub fn satisfied_by(&self, x: &[i64]) -> bool {
        assert_eq!(x.len(), self.n);
        self.constraints.iter().all(|&(a, b, c)| x[a] - x[b] <= c)
    }

    /// Solve with Bellman–Ford from a virtual source.
    ///
    /// Returns the pointwise-maximal non-positive solution, or `None` if
    /// the system is infeasible (negative constraint cycle).
    pub fn solve(&self) -> Option<Vec<i64>> {
        // dist[v] starts at 0 (virtual source edges). Constraint
        // x[a] - x[b] <= c is the edge b -> a with weight c:
        // relax dist[a] <- min(dist[a], dist[b] + c).
        let mut dist = vec![0i64; self.n];
        // A fixpoint, if one exists, is reached within n rounds (shortest
        // paths from the virtual source have at most n edges); running
        // n + 1 rounds without quiescing therefore proves a negative cycle,
        // and the fall-through below is the single infeasibility exit.
        for _round in 0..=self.n {
            let mut changed = false;
            for &(a, b, c) in &self.constraints {
                let cand = dist[b].saturating_add(c);
                if cand < dist[a] {
                    dist[a] = cand;
                    changed = true;
                }
            }
            if !changed {
                debug_assert!(self.satisfied_by(&dist));
                return Some(dist);
            }
        }
        None // still relaxing after n + 1 rounds: negative cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_system_solves_to_zero() {
        let sys = ConstraintSystem::new(3);
        assert_eq!(sys.solve(), Some(vec![0, 0, 0]));
    }

    #[test]
    fn simple_chain() {
        // x0 - x1 <= -1 (x0 < x1), x1 - x2 <= -1.
        let mut sys = ConstraintSystem::new(3);
        sys.add(0, 1, -1);
        sys.add(1, 2, -1);
        let x = sys.solve().unwrap();
        assert!(sys.satisfied_by(&x));
        assert!(x[0] < x[1]);
        assert!(x[1] < x[2]);
    }

    #[test]
    fn infeasible_cycle_detected() {
        // x0 - x1 <= -1 and x1 - x0 <= 0 sum to -1 <= 0 around a cycle: UNSAT.
        let mut sys = ConstraintSystem::new(2);
        sys.add(0, 1, -1);
        sys.add(1, 0, 0);
        assert_eq!(sys.solve(), None);
    }

    #[test]
    fn feasible_zero_cycle_ok() {
        // x0 - x1 <= -1 and x1 - x0 <= 1: tight but satisfiable.
        let mut sys = ConstraintSystem::new(2);
        sys.add(0, 1, -1);
        sys.add(1, 0, 1);
        let x = sys.solve().unwrap();
        assert_eq!(x[0] - x[1], -1);
    }

    #[test]
    fn duplicate_constraints_keep_tightest() {
        let mut sys = ConstraintSystem::new(2);
        sys.add(0, 1, 5);
        sys.add(0, 1, 2);
        sys.add(0, 1, 7);
        let x = sys.solve().unwrap();
        assert!(x[0] - x[1] <= 2);
    }

    #[test]
    fn self_constraint_nonnegative_ok_negative_unsat() {
        let mut sys = ConstraintSystem::new(1);
        sys.add(0, 0, 0);
        assert!(sys.solve().is_some());
        sys.add(0, 0, -1);
        assert_eq!(sys.solve(), None);
    }

    #[test]
    fn add_dedups_keeping_tightest_in_insertion_order() {
        let mut sys = ConstraintSystem::new(3);
        sys.add(0, 1, 5);
        sys.add(1, 2, 4);
        sys.add(0, 1, 2);
        sys.add(0, 1, 7);
        assert_eq!(sys.len(), 2);
        assert_eq!(sys.constraints(), &[(0, 1, 2), (1, 2, 4)]);
    }

    #[test]
    fn negative_cycle_exit_is_reached_exactly_when_infeasible() {
        // Zero-weight cycle: feasible, quiesces. Perturb one bound by -1:
        // the same loop must fall through to the negative-cycle exit.
        let mut sys = ConstraintSystem::new(3);
        sys.add(0, 1, 1);
        sys.add(1, 2, 1);
        sys.add(2, 0, -2);
        assert!(sys.solve().is_some());
        let mut bad = ConstraintSystem::new(3);
        bad.add(0, 1, 1);
        bad.add(1, 2, 1);
        bad.add(2, 0, -3);
        assert_eq!(bad.solve(), None);
    }

    #[test]
    fn satisfied_by_checks_all() {
        let mut sys = ConstraintSystem::new(2);
        sys.add(0, 1, -1);
        assert!(sys.satisfied_by(&[0, 1]));
        assert!(!sys.satisfied_by(&[1, 1]));
    }

    #[test]
    fn larger_random_feasible_system() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        // Build a system known to be feasible by construction: pick a ground
        // truth assignment, emit only constraints it satisfies.
        let n = 40;
        let truth: Vec<i64> = (0..n).map(|_| rng.random_range(-10..10i64)).collect();
        let mut sys = ConstraintSystem::new(n);
        for _ in 0..300 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            let slack = rng.random_range(0..5i64);
            sys.add(a, b, truth[a] - truth[b] + slack);
        }
        let x = sys.solve().expect("constructed system must be feasible");
        assert!(sys.satisfied_by(&x));
    }
}
