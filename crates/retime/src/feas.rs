//! FEAS: the iterative feasibility test for a target clock period
//! (Leiserson–Saxe), used here as an independent oracle cross-checking the
//! constraint-based [`crate::minperiod`] implementation.
//!
//! For a target period `c`, repeat `|V| - 1` times: compute `Delta(v)` (the
//! longest zero-delay path ending at `v` in the *currently retimed* graph)
//! and push one delay through every node with `Delta(v) > c` — in the
//! paper's sign convention, *decrement* `r(v)` (a delay is drawn from `v`'s
//! outgoing edges onto its incoming edges, cutting long paths that end at
//! `v`). If the resulting graph meets the period, `c` is feasible.

use crate::Retiming;
use cred_dfg::algo::{cycle_period, zero_delay_longest_path_to};
use cred_dfg::Dfg;

/// Run FEAS for target period `c`. Returns a normalized legal retiming
/// achieving `cycle_period <= c`, or `None` if `c` is infeasible.
pub fn feas(g: &Dfg, c: u64) -> Option<Retiming> {
    let n = g.node_count();
    let mut r = Retiming::zero(n);
    let mut current = g.clone();
    for _ in 0..n.saturating_sub(1) {
        let delta = zero_delay_longest_path_to(&current).expect("retimed graph stays well-formed");
        let mut changed = false;
        for v in g.node_ids() {
            if delta[v.index()] > c {
                r.set(v, r.get(v) - 1);
                changed = true;
            }
        }
        if !changed {
            break;
        }
        current = r.apply(g);
    }
    if cycle_period(&current).expect("well-formed") <= c {
        let mut r = r;
        r.normalize();
        Some(r)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minperiod::{min_period_retiming, retime_to_period};
    use cred_dfg::{algo, gen, DfgBuilder};

    #[test]
    fn feas_figure1() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 0);
        b.edge(bb, a, 2);
        let g = b.build().unwrap();
        let r = feas(&g, 1).expect("period 1 feasible");
        assert_eq!(algo::cycle_period(&r.apply(&g)), Some(1));
    }

    #[test]
    fn feas_rejects_below_bound() {
        let g = gen::chain_with_feedback(6, 2); // iteration bound 3
        assert!(feas(&g, 2).is_none());
        assert!(feas(&g, 3).is_some());
    }

    #[test]
    fn feas_agrees_with_opt_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 9,
                    max_time: 4,
                    max_delay: 3,
                    ..Default::default()
                },
            );
            let opt = min_period_retiming(&g);
            // FEAS must accept the optimal period and reject one below it.
            assert!(
                feas(&g, opt.period).is_some(),
                "FEAS rejected OPT period {}",
                opt.period
            );
            if opt.period > 1 {
                assert!(
                    feas(&g, opt.period - 1).is_none(),
                    "FEAS accepted sub-optimal period {}",
                    opt.period - 1
                );
                assert!(retime_to_period(&g, opt.period - 1).is_none());
            }
        }
    }

    #[test]
    fn feas_result_is_legal_and_normalized() {
        let g = gen::chain_with_feedback(8, 4);
        let r = feas(&g, 2).expect("8 nodes / 4 delays: period 2 feasible");
        assert!(r.is_legal(&g));
        assert!(r.is_normalized());
    }

    #[test]
    fn trivially_feasible_period_returns_zero_retiming() {
        let g = gen::chain_with_feedback(4, 1);
        let r = feas(&g, 10).unwrap();
        assert_eq!(r.values(), &[0, 0, 0, 0]);
    }
}
