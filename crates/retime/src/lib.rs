//! # cred-retime — retiming engine
//!
//! Retiming redistributes the delays of a DFG to shorten its cycle period;
//! every retiming operation corresponds to a software-pipelining operation
//! on the loop (paper §2.2).
//!
//! ## Sign convention
//!
//! This crate follows the paper, *not* Leiserson–Saxe: `r(v)` is the number
//! of delays pushed **forward** through `v` (drawn from its incoming edges,
//! added to its outgoing edges), so for an edge `e(u -> v)`
//!
//! ```text
//! d_r(e) = d(e) + r(u) - r(v)
//! ```
//!
//! and a node with normalized retiming value `r(v)` contributes `r(v)`
//! instruction copies to the prologue and `M_r - r(v)` copies to the
//! epilogue, where `M_r = max_u r(u)` (paper §2.2). The Leiserson–Saxe `r`
//! is the negation of this one.
//!
//! ## Contents
//!
//! * [`Retiming`] — a retiming function with legality checking,
//!   normalization, application, and the prologue/epilogue bookkeeping the
//!   code-size theorems rest on;
//! * [`constraints`] — the reference difference-constraint solver
//!   (edge-list Bellman–Ford), kept as the differential-testing oracle;
//! * [`diff`] — the incremental difference-constraint engine (assert one
//!   constraint at a time, checkpoint/rollback on a trail, positive-cycle
//!   witnesses), the DPLL(T)-style theory core `cred-exact`'s
//!   branch-and-bound scheduler propagates its dependence side on;
//! * [`incremental`] — the production solver: CSR constraint graph with a
//!   period-activation prefix, queue-based SPFA, and warm starts across
//!   the period/span binary searches (bit-identical to the reference);
//! * [`minperiod`] — the OPT algorithm (binary search over W/D candidate
//!   periods) plus fixed-period retiming;
//! * [`feas`] — the FEAS algorithm, an independent oracle for achievable
//!   periods;
//! * [`span`] — post-passes minimizing `M_r` (span) and heuristically
//!   compacting the number of distinct retiming values `|N_r|`
//!   (= conditional registers needed, Theorem 4.3);
//! * [`registers`] — exact branch-and-bound minimization of `|N_r|`.

pub mod constraints;
pub mod diff;
pub mod feas;
pub mod incremental;
pub mod minperiod;
pub mod registers;
mod retiming;
pub mod span;

pub use constraints::ConstraintSystem;
pub use diff::{DiffEngine, PositiveCycle};
pub use incremental::{CsrConstraintGraph, RetimeSolver, SolverScratch};
pub use minperiod::{
    min_period_retiming, min_period_retiming_with, retime_to_period, retime_to_period_with,
    MinPeriodResult,
};
pub use retiming::Retiming;
