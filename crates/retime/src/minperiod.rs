//! OPT: minimum cycle-period retiming (Leiserson–Saxe algorithm OPT,
//! transcribed to the paper's sign convention).
//!
//! A clock period `c` is achievable by retiming iff the difference
//! constraints
//!
//! * `r(v) - r(u) <= d(e)` for every edge `e(u -> v)` (legality), and
//! * `r(v) - r(u) <= W(u, v) - 1` for every node pair with `D(u, v) > c`
//!   (every too-slow path must receive at least one delay)
//!
//! are satisfiable. The optimal period is found by binary search over the
//! distinct entries of `D`, which are exactly the candidate periods.

use crate::{ConstraintSystem, Retiming};
use cred_dfg::algo::WdMatrices;
use cred_dfg::Dfg;

/// Result of [`min_period_retiming`].
#[derive(Debug, Clone)]
pub struct MinPeriodResult {
    /// A normalized retiming achieving the period.
    pub retiming: Retiming,
    /// The minimum achievable cycle period.
    pub period: u64,
}

/// Build the feasibility constraint system for period `c`.
pub fn constraints_for_period(g: &Dfg, wd: &WdMatrices, c: i64) -> ConstraintSystem {
    let mut sys = ConstraintSystem::new(g.node_count());
    add_period_constraints(&mut sys, g, wd, c);
    sys
}

/// Add the period-`c` feasibility constraints to `sys`, whose first
/// `g.node_count()` variables are the retiming values (it may have more —
/// the span minimizer appends an auxiliary variable).
pub(crate) fn add_period_constraints(sys: &mut ConstraintSystem, g: &Dfg, wd: &WdMatrices, c: i64) {
    let n = g.node_count();
    for e in g.edge_ids() {
        let ed = g.edge(e);
        sys.add(ed.dst.index(), ed.src.index(), ed.delay as i64);
    }
    for u in 0..n {
        for v in 0..n {
            if let (Some(w), Some(d)) = (wd.w(u, v), wd.d(u, v)) {
                if d > c {
                    sys.add(v, u, w - 1);
                }
            }
        }
    }
}

/// Find a legal retiming achieving cycle period `<= c`, if one exists.
///
/// The returned retiming is normalized (minimum value zero).
pub fn retime_to_period(g: &Dfg, c: u64) -> Option<Retiming> {
    let wd = WdMatrices::compute(g);
    retime_to_period_with(g, &wd, c)
}

/// [`retime_to_period`] with a precomputed W/D matrix (for callers sweeping
/// many periods). Runs the incremental SPFA solver
/// ([`crate::RetimeSolver`]); callers probing many periods on one graph
/// should hold a solver directly to keep its warm state across probes.
pub fn retime_to_period_with(g: &Dfg, wd: &WdMatrices, c: u64) -> Option<Retiming> {
    crate::RetimeSolver::new(g, wd).retime_to_period(c)
}

/// The dense reference path of [`retime_to_period_with`]: build the full
/// [`ConstraintSystem`] and solve it with edge-list Bellman–Ford. Kept as
/// the differential-testing oracle for the incremental solver; results are
/// bit-identical.
pub fn retime_to_period_reference(g: &Dfg, wd: &WdMatrices, c: u64) -> Option<Retiming> {
    let sys = constraints_for_period(g, wd, c as i64);
    let sol = sys.solve()?;
    let mut r = Retiming::from_values(sol);
    r.normalize();
    debug_assert!(r.is_legal(g));
    debug_assert!(cred_dfg::algo::cycle_period(&r.apply(g)) <= Some(c));
    Some(r)
}

/// Compute the minimum cycle period achievable by retiming, and a
/// normalized retiming realizing it.
///
/// # Panics
/// Panics on an empty or malformed graph.
pub fn min_period_retiming(g: &Dfg) -> MinPeriodResult {
    let wd = WdMatrices::compute(g);
    min_period_retiming_with(g, &wd)
}

/// [`min_period_retiming`] with a precomputed W/D matrix, for callers that
/// run several retiming passes over the same graph (the exploration
/// engine's memoized path computes the matrix once per unfolded graph and
/// shares it between the period search, span minimization, and register
/// compaction). The binary search runs on the warm-started incremental
/// solver, so each tightening probe reuses the previous feasible solution.
pub fn min_period_retiming_with(g: &Dfg, wd: &WdMatrices) -> MinPeriodResult {
    crate::RetimeSolver::new(g, wd).min_period()
}

/// The dense reference path of [`min_period_retiming_with`]: every probe
/// rebuilds the full constraint system and solves from scratch. Kept as
/// the differential-testing oracle; bit-identical to the incremental path.
pub fn min_period_retiming_reference(g: &Dfg, wd: &WdMatrices) -> MinPeriodResult {
    g.validate()
        .expect("min_period_retiming requires a well-formed DFG");
    let cands = wd.candidate_periods();
    assert!(!cands.is_empty());
    // Feasibility is monotone in c, so binary search over sorted candidates.
    let mut lo = 0usize; // lowest untested index
    let mut hi = cands.len() - 1; // known feasible? the max D is always feasible
    debug_assert!(
        retime_to_period_reference(g, wd, cands[hi] as u64).is_some(),
        "the maximum D entry must always be feasible (zero retiming)"
    );
    let mut best = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        if let Some(r) = retime_to_period_reference(g, wd, cands[mid] as u64) {
            best = Some((r, cands[mid] as u64));
            if mid == 0 {
                break;
            }
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }
    let (retiming, period) = best.expect("at least the maximum candidate is feasible");
    MinPeriodResult { retiming, period }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::{algo, gen, DfgBuilder, OpKind};

    #[test]
    fn figure1_min_period_is_one() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 0);
        b.edge(bb, a, 2);
        let g = b.build().unwrap();
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 1);
        assert!(res.retiming.is_legal(&g));
        assert_eq!(algo::cycle_period(&res.retiming.apply(&g)), Some(1));
    }

    #[test]
    fn chain_with_enough_delays_reaches_unit_period() {
        // 5-node zero-delay chain, feedback with 5 delays: every node can
        // get its own pipeline stage.
        let g = gen::chain_with_feedback(5, 5);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 1);
    }

    #[test]
    fn chain_with_few_delays_is_limited_by_bound() {
        // 6-node chain, 2 delays on feedback: B = 6/2 = 3, so the best
        // integer period is >= 3; retiming achieves exactly 3.
        let g = gen::chain_with_feedback(6, 2);
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 3);
    }

    #[test]
    fn min_period_never_beats_iteration_bound() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..25 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 8,
                    max_time: 4,
                    ..Default::default()
                },
            );
            let res = min_period_retiming(&g);
            if let Some(b) = algo::iteration_bound(&g) {
                assert!(
                    cred_dfg::Ratio::integer(res.period as i64) >= b,
                    "period {} below iteration bound {b}",
                    res.period
                );
            }
            // And the retiming really achieves the period it claims.
            let gr = res.retiming.apply(&g);
            assert_eq!(algo::cycle_period(&gr), Some(res.period));
        }
    }

    #[test]
    fn min_period_is_minimal_among_candidates() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..15 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 7,
                    max_time: 3,
                    ..Default::default()
                },
            );
            let res = min_period_retiming(&g);
            // No strictly smaller candidate period may be feasible.
            if res.period > 1 {
                assert!(retime_to_period(&g, res.period - 1).is_none());
            }
        }
    }

    #[test]
    fn acyclic_graph_retimes_to_max_node_time() {
        // A zero-delay chain of unit nodes with NO cycle can't be retimed at
        // all (no delays to move): min period = chain length. With delays on
        // each edge it is 1. Here: edges carry one delay each => period 1...
        // except the largest single node time is the floor.
        let mut b = DfgBuilder::new();
        let a = b.node("A", 4, OpKind::Add(0));
        let c = b.node("B", 2, OpKind::Add(0));
        let d = b.node("C", 1, OpKind::Add(0));
        b.edge(a, c, 1);
        b.edge(c, d, 1);
        let g = b.build().unwrap();
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 4);
    }

    #[test]
    fn feed_forward_chain_can_be_fully_pipelined() {
        // Pure feed-forward zero-delay chain: retiming may insert delays
        // freely (no cycles), reaching the max node time.
        let mut b = DfgBuilder::new();
        let a = b.node("A", 2, OpKind::Add(0));
        let c = b.node("B", 3, OpKind::Add(0));
        let d = b.node("C", 2, OpKind::Add(0));
        b.edge(a, c, 0);
        b.edge(c, d, 0);
        let g = b.build().unwrap();
        let res = min_period_retiming(&g);
        assert_eq!(res.period, 3);
        assert!(res.retiming.is_legal(&g));
    }

    #[test]
    fn result_retiming_is_normalized() {
        let g = gen::chain_with_feedback(4, 4);
        let res = min_period_retiming(&g);
        assert!(res.retiming.is_normalized());
    }

    #[test]
    fn precomputed_wd_gives_identical_result() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 8,
                    ..Default::default()
                },
            );
            let fresh = min_period_retiming(&g);
            let wd = WdMatrices::compute(&g);
            let memo = min_period_retiming_with(&g, &wd);
            assert_eq!(fresh.period, memo.period);
            assert_eq!(fresh.retiming, memo.retiming);
        }
    }

    #[test]
    fn incremental_path_matches_reference_oracle() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..15 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 8,
                    max_delay: 3,
                    ..Default::default()
                },
            );
            let wd = WdMatrices::compute(&g);
            let fast = min_period_retiming_with(&g, &wd);
            let slow = min_period_retiming_reference(&g, &wd);
            assert_eq!(fast.period, slow.period);
            assert_eq!(fast.retiming, slow.retiming);
        }
    }

    #[test]
    fn fixed_period_infeasible_below_bound() {
        let g = gen::chain_with_feedback(6, 2); // bound 3
        assert!(retime_to_period(&g, 2).is_none());
        assert!(retime_to_period(&g, 3).is_some());
        assert!(retime_to_period(&g, 100).is_some());
    }
}
