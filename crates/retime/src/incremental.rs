//! Warm-started incremental solver for the retiming constraint systems.
//!
//! The reference path ([`crate::ConstraintSystem`]) rebuilds the full
//! `O(V^2)` difference-constraint system and re-runs a dense edge-list
//! Bellman–Ford from an all-zero start for *every* feasibility probe of the
//! period search. But the constraint set for a smaller period `c` is a
//! strict superset of the one for a larger `c` (Leiserson–Saxe: the
//! period-`c` constraints are the pairs with `D(u, v) > c`), so this module
//! solves the whole search incrementally:
//!
//! * [`CsrConstraintGraph`] stores the legality edges once in CSR form and
//!   the period constraints as a per-row tail sorted by `D` descending;
//!   a period `c` activates a *prefix* of each tail (and of the global
//!   activation order) instead of rebuilding anything.
//! * The solver core is a queue-based SPFA (deque with smallest-label-first
//!   placement, an in-queue bitmap, and walk-length negative-cycle
//!   detection) over the CSR graph; all of its state lives in a reusable
//!   [`SolverScratch`] arena, so repeated solves allocate nothing.
//! * [`RetimeSolver`] warm-starts every probe: tightening `c` restores the
//!   last feasible fixpoint, activates the new constraint prefix, and seeds
//!   the queue with only the newly activated edges. Because the systems are
//!   nested and relaxation fixpoints are unique, the warm solve converges to
//!   the *same* distance vector the cold reference computes — results are
//!   bit-identical, which the differential property tests assert.
//!
//! The span minimizer rides the same state: its auxiliary variable `z`
//! (`r(u) - z <= 0`, `z - r(v) <= s`) is a permanent extra vertex whose
//! edges are materialized implicitly during span probes, and each probe
//! warm-starts from the last feasible span solution.
//!
//! ## Why warm starts stay exact
//!
//! The canonical solution is the pointwise-*maximal* non-positive solution
//! `x*`, i.e. the shortest-path distances from a virtual source. Relaxation
//! from any starting vector `d0` with `x* <= d0 <= 0` is monotone
//! non-increasing, never crosses below `x*` (induction over relaxations),
//! and any quiescent point is a solution, so it terminates exactly at `x*`.
//! Tightening the system (activating constraints, shrinking a span bound)
//! only lowers `x*`, so the previous feasible fixpoint is always a valid
//! `d0`. Infeasibility is detected by walk length: a relaxation chain of
//! `|vars|` edges must revisit a vertex, and a revisit with strict
//! improvement certifies a negative cycle.

use crate::minperiod::MinPeriodResult;
use crate::Retiming;
use cred_dfg::algo::WdMatrices;
use cred_dfg::Dfg;
use cred_resilience::failpoint::{self, sites};
use cred_resilience::{Budget, Exhausted};
use std::collections::VecDeque;

/// Sentinel period: "no period constraints active" (legality edges only).
const NO_PERIOD: i64 = i64::MAX;
/// Sentinel span: "no feasible span snapshot".
const NO_SPAN: i64 = -1;

/// The retiming constraint graph in compressed-sparse-row form.
///
/// Built once per `(graph, W/D)` pair. Variables `0..n` are the retiming
/// values; variable `n` is the span minimizer's auxiliary `max r` vertex
/// (its edges are implicit — weight `0` out, the probed span in — so they
/// need no storage). A constraint `x[a] - x[b] <= c` is the edge `b -> a`
/// with weight `c`:
///
/// * legality edges `src -> dst` with weight `d(e)` are static (always
///   active) and stored CSR-style in `leg_*`;
/// * period edges `u -> v` with weight `W(u, v) - 1` are stored per source
///   row sorted by `D(u, v)` descending, so the active edges of row `u`
///   for any period `c` are the prefix of length `active[u]`;
/// * `act_*` is the same edge set in global activation order (`D`
///   descending), which is what the warm-start walks when the period
///   tightens.
#[derive(Debug, Clone)]
pub struct CsrConstraintGraph {
    n: usize,
    leg_row: Vec<u32>,
    leg_col: Vec<u32>,
    leg_w: Vec<i64>,
    per_row: Vec<u32>,
    per_col: Vec<u32>,
    per_w: Vec<i64>,
    /// Activation order: for entry `i`, `act_edge[i]` indexes `per_col` /
    /// `per_w`, `act_src[i]` is its source row, `act_d[i]` its `D` value
    /// (non-increasing in `i`).
    act_edge: Vec<u32>,
    act_src: Vec<u32>,
    act_d: Vec<i64>,
}

impl CsrConstraintGraph {
    /// Build the CSR graph for `g` from its W/D matrices.
    pub fn build(g: &Dfg, wd: &WdMatrices) -> Self {
        let n = g.node_count();
        assert_eq!(wd.len(), n, "W/D matrices belong to a different graph");
        // Legality edges, counting-sorted by source row.
        let mut leg_row = vec![0u32; n + 2];
        for e in g.edge_ids() {
            leg_row[g.edge(e).src.index() + 1] += 1;
        }
        for i in 1..leg_row.len() {
            leg_row[i] += leg_row[i - 1];
        }
        let mut cursor: Vec<u32> = leg_row[..n + 1].to_vec();
        let mut leg_col = vec![0u32; g.edge_count()];
        let mut leg_w = vec![0i64; g.edge_count()];
        for e in g.edge_ids() {
            let ed = g.edge(e);
            let slot = cursor[ed.src.index()] as usize;
            cursor[ed.src.index()] += 1;
            leg_col[slot] = ed.dst.index() as u32;
            leg_w[slot] = ed.delay as i64;
        }
        // Period edges: the W/D activation order is (D desc, u asc, v asc),
        // so distributing entries to rows in order leaves every row sorted
        // by D descending — each period's active set is a row prefix.
        let act = wd.activation_by_d();
        let mut per_row = vec![0u32; n + 1];
        for &(_, u, _) in act {
            per_row[u as usize + 1] += 1;
        }
        for i in 1..per_row.len() {
            per_row[i] += per_row[i - 1];
        }
        let mut cursor: Vec<u32> = per_row[..n].to_vec();
        let mut per_col = vec![0u32; act.len()];
        let mut per_w = vec![0i64; act.len()];
        let mut act_edge = vec![0u32; act.len()];
        let mut act_src = vec![0u32; act.len()];
        let mut act_d = vec![0i64; act.len()];
        for (i, &(d, u, v)) in act.iter().enumerate() {
            let slot = cursor[u as usize];
            cursor[u as usize] += 1;
            per_col[slot as usize] = v;
            per_w[slot as usize] = wd.w(u as usize, v as usize).expect("reachable pair") - 1;
            act_edge[i] = slot;
            act_src[i] = u;
            act_d[i] = d;
        }
        CsrConstraintGraph {
            n,
            leg_row,
            leg_col,
            leg_w,
            per_row,
            per_col,
            per_w,
            act_edge,
            act_src,
            act_d,
        }
    }

    /// Number of retiming variables (graph nodes); the solver additionally
    /// carries the auxiliary span vertex `n`.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Total period constraints (the activation tail's full length).
    pub fn period_edge_count(&self) -> usize {
        self.act_edge.len()
    }

    /// Length of the activation prefix for period `c` (entries with
    /// `D > c`).
    fn prefix_for(&self, c: i64) -> usize {
        self.act_d.partition_point(|&d| d > c)
    }
}

/// Reusable solver state: distance labels, SPFA queue, in-queue bitmap,
/// walk lengths, per-row activation counters, and the warm-start
/// snapshots. One scratch serves any number of solves (and, via
/// [`RetimeSolver::into_scratch`], any number of graphs) without
/// reallocating once grown.
#[derive(Debug, Default, Clone)]
pub struct SolverScratch {
    dist: Vec<i64>,
    walk: Vec<u32>,
    inq: Vec<u64>,
    queue: VecDeque<u32>,
    active: Vec<u32>,
    feas: Vec<i64>,
    span_feas: Vec<i64>,
}

impl SolverScratch {
    /// A fresh, empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size every buffer for `nv` variables and zero the per-graph state.
    fn reset(&mut self, nv: usize) {
        self.dist.clear();
        self.dist.resize(nv, 0);
        self.walk.clear();
        self.walk.resize(nv, 0);
        self.inq.clear();
        self.inq.resize(nv.div_ceil(64), 0);
        self.queue.clear();
        self.active.clear();
        self.active.resize(nv, 0);
        self.feas.clear();
        self.feas.resize(nv, 0);
        self.span_feas.clear();
        self.span_feas.resize(nv, 0);
    }

    #[inline]
    fn inq_test_set(&mut self, v: usize) -> bool {
        let (word, bit) = (v / 64, 1u64 << (v % 64));
        let was = self.inq[word] & bit != 0;
        self.inq[word] |= bit;
        was
    }

    #[inline]
    fn inq_clear(&mut self, v: usize) {
        self.inq[v / 64] &= !(1u64 << (v % 64));
    }
}

/// Incremental retiming solver over one `(graph, W/D)` pair.
///
/// Drives the whole period search and span minimization through warm
/// starts: the first probe pays one queue-based SPFA from the legality
/// fixpoint (all zeros — legal because edge delays are non-negative), and
/// every tightened probe restarts from the last feasible fixpoint with only
/// the newly activated constraints seeded. Produces results bit-identical
/// to the [`crate::ConstraintSystem`] reference path.
#[derive(Debug)]
pub struct RetimeSolver<'a> {
    g: &'a Dfg,
    wd: &'a WdMatrices,
    csr: CsrConstraintGraph,
    s: SolverScratch,
    /// `s.feas` is the exact fixpoint of the period-`feas_c` system.
    feas_c: i64,
    /// `s.span_feas` is the fixpoint of `(feas_c, span_feas_s)`;
    /// `NO_SPAN` when no span snapshot is valid.
    span_feas_s: i64,
    /// Currently materialized activation prefix (rows' `active` counters).
    act_prefix: usize,
}

impl<'a> RetimeSolver<'a> {
    /// Build a solver for `g`, allocating a fresh scratch arena.
    pub fn new(g: &'a Dfg, wd: &'a WdMatrices) -> Self {
        Self::with_scratch(g, wd, SolverScratch::new())
    }

    /// Build a solver reusing `scratch` from a previous solver (e.g. the
    /// previous unfolding factor of a sweep); buffers are resized, never
    /// shrunk, so steady-state solves allocate nothing.
    pub fn with_scratch(g: &'a Dfg, wd: &'a WdMatrices, mut scratch: SolverScratch) -> Self {
        let csr = CsrConstraintGraph::build(g, wd);
        scratch.reset(csr.n + 1);
        RetimeSolver {
            g,
            wd,
            csr,
            s: scratch,
            // The all-zero vector is the exact fixpoint of the legality-only
            // system (every edge delay is >= 0), i.e. of period "infinity".
            feas_c: NO_PERIOD,
            span_feas_s: NO_SPAN,
            act_prefix: 0,
        }
    }

    /// Recover the scratch arena for reuse by the next solver.
    pub fn into_scratch(self) -> SolverScratch {
        self.s
    }

    /// Move the materialized activation prefix (and the per-row active
    /// counters) to `target`. Within each row the global activation order
    /// restricted to that row *is* the row order, so counters track exact
    /// row prefixes in both directions.
    fn materialize(&mut self, target: usize) {
        while self.act_prefix < target {
            self.s.active[self.csr.act_src[self.act_prefix] as usize] += 1;
            self.act_prefix += 1;
        }
        while self.act_prefix > target {
            self.act_prefix -= 1;
            self.s.active[self.csr.act_src[self.act_prefix] as usize] -= 1;
        }
    }

    /// SPFA from the seeded queue. `span`: when `Some(s)`, the auxiliary
    /// vertex `n` is live with implicit edges `u -> n` (weight `s`) and
    /// `n -> u` (weight `0`). Returns `Ok(false)` on a negative cycle.
    ///
    /// One work unit is charged to `budget` per dequeued vertex;
    /// exhaustion aborts the solve mid-relaxation without touching the
    /// warm-start snapshots (`s.feas` / `s.span_feas`), so an exhausted
    /// solver stays valid for retry or fallback.
    fn run(&mut self, span: Option<i64>, budget: &Budget) -> Result<bool, Exhausted> {
        failpoint::hit(sites::RETIME_SPFA).map_err(|f| Exhausted::Injected { site: f.site })?;
        let n = self.csr.n;
        let limit = (n + 1) as u32;
        while let Some(u) = self.s.queue.pop_front() {
            budget.charge(1)?;
            let u = u as usize;
            self.s.inq_clear(u);
            let du = self.s.dist[u];
            let wu = self.s.walk[u];
            macro_rules! relax {
                ($v:expr, $w:expr) => {{
                    let v = $v as usize;
                    let cand = du + $w;
                    if cand < self.s.dist[v] {
                        self.s.dist[v] = cand;
                        let wl = wu + 1;
                        self.s.walk[v] = wl;
                        if wl >= limit {
                            return Ok(false); // walk revisits a vertex: negative cycle
                        }
                        if !self.s.inq_test_set(v) {
                            // Smallest-label-first: likely-final labels are
                            // processed sooner, cutting re-relaxations.
                            match self.s.queue.front() {
                                Some(&f) if cand < self.s.dist[f as usize] => {
                                    self.s.queue.push_front(v as u32)
                                }
                                _ => self.s.queue.push_back(v as u32),
                            }
                        }
                    }
                }};
            }
            if u < n {
                for i in self.csr.leg_row[u] as usize..self.csr.leg_row[u + 1] as usize {
                    relax!(self.csr.leg_col[i], self.csr.leg_w[i]);
                }
                let row = self.csr.per_row[u] as usize;
                for i in row..row + self.s.active[u] as usize {
                    relax!(self.csr.per_col[i], self.csr.per_w[i]);
                }
                if let Some(s) = span {
                    relax!(n, s);
                }
            } else if span.is_some() {
                for v in 0..n {
                    relax!(v, 0i64);
                }
            }
        }
        Ok(true)
    }

    /// Seed the queue by relaxing one explicit edge `u -> v` of weight `w`.
    /// Returns `false` if the walk-length bound certifies a negative cycle.
    fn seed_edge(&mut self, u: usize, v: usize, w: i64) -> bool {
        let limit = (self.csr.n + 1) as u32;
        let cand = self.s.dist[u] + w;
        if cand < self.s.dist[v] {
            self.s.dist[v] = cand;
            let wl = self.s.walk[u] + 1;
            self.s.walk[v] = wl;
            if wl >= limit {
                return false;
            }
            if !self.s.inq_test_set(v) {
                self.s.queue.push_back(v as u32);
            }
        }
        true
    }

    /// Clear per-solve state (walk lengths, queue, bitmap).
    fn begin_solve(&mut self) {
        self.s.walk.fill(0);
        self.s.queue.clear();
        self.s.inq.fill(0);
    }

    /// Solve the period-`c` feasibility system, leaving the fixpoint in
    /// `s.dist` (and snapshotting it as the new warm-start state) when
    /// feasible.
    fn solve_period_raw(&mut self, c: i64, budget: &Budget) -> Result<bool, Exhausted> {
        self.span_feas_s = NO_SPAN; // span snapshots are per-period
        if c == self.feas_c {
            // Same system as the snapshot: the fixpoint is already known.
            self.s.dist.copy_from_slice(&self.s.feas);
            self.materialize(self.csr.prefix_for(c));
            return Ok(true);
        }
        self.begin_solve();
        // Warm start from the tightest feasible snapshot that is still an
        // upper bound of the target fixpoint: the nested-superset structure
        // makes any feasible solution for a *larger* period valid. For a
        // looser-than-snapshot period, fall back to the legality fixpoint
        // (all zeros) so the result stays the canonical maximal solution.
        let warm_c = if c <= self.feas_c {
            self.feas_c
        } else {
            NO_PERIOD
        };
        if warm_c == NO_PERIOD {
            self.s.dist.fill(0);
        } else {
            self.s.dist.copy_from_slice(&self.s.feas);
        }
        let from = if warm_c == NO_PERIOD {
            0
        } else {
            self.csr.prefix_for(warm_c)
        };
        let target = self.csr.prefix_for(c);
        self.materialize(target);
        // Seed only the newly activated constraints; everything already
        // active is quiescent under the warm-start vector.
        for i in from..target {
            budget.charge(1)?;
            let e = self.csr.act_edge[i] as usize;
            let u = self.csr.act_src[i] as usize;
            let v = self.csr.per_col[e] as usize;
            let w = self.csr.per_w[e];
            if !self.seed_edge(u, v, w) {
                return Ok(false);
            }
        }
        if !self.run(None, budget)? {
            return Ok(false);
        }
        self.s.feas.copy_from_slice(&self.s.dist);
        self.feas_c = c;
        Ok(true)
    }

    /// A normalized legal retiming achieving period `<= c`, or `None`.
    /// Bit-identical to [`crate::minperiod::retime_to_period_reference`].
    pub fn retime_to_period(&mut self, c: u64) -> Option<Retiming> {
        unbudgeted(self.retime_to_period_budgeted(c, &Budget::unlimited()))
    }

    /// [`Self::retime_to_period`] under a budget. `Err` means the budget
    /// ran out mid-solve: no answer was produced (never a partial one),
    /// and the solver's warm state is untouched, so it remains valid for
    /// a retry with a larger budget or a different period.
    pub fn retime_to_period_budgeted(
        &mut self,
        c: u64,
        budget: &Budget,
    ) -> Result<Option<Retiming>, Exhausted> {
        if !self.solve_period_raw(c as i64, budget)? {
            return Ok(None);
        }
        let mut r = Retiming::from_values(self.s.dist[..self.csr.n].to_vec());
        r.normalize();
        debug_assert!(r.is_legal(self.g));
        debug_assert!(cred_dfg::algo::cycle_period(&r.apply(self.g)) <= Some(c));
        Ok(Some(r))
    }

    /// Minimum achievable cycle period and a retiming realizing it, by the
    /// same binary search over `D` candidates as the reference OPT — every
    /// tightening probe is warm-started. Bit-identical to
    /// [`crate::minperiod::min_period_retiming_reference`].
    ///
    /// # Panics
    /// Panics on an empty or malformed graph.
    pub fn min_period(&mut self) -> MinPeriodResult {
        unbudgeted(self.min_period_budgeted(&Budget::unlimited()))
    }

    /// [`Self::min_period`] under a budget. The budget spans the *whole*
    /// binary search: all probes charge into the same counter. On `Err`
    /// no result is produced; the solver remains usable.
    ///
    /// # Panics
    /// Panics on an empty or malformed graph.
    pub fn min_period_budgeted(&mut self, budget: &Budget) -> Result<MinPeriodResult, Exhausted> {
        failpoint::hit(sites::RETIME_MIN_PERIOD)
            .map_err(|f| Exhausted::Injected { site: f.site })?;
        self.g
            .validate()
            .expect("min_period_retiming requires a well-formed DFG");
        let cands = self.wd.candidate_periods();
        assert!(!cands.is_empty());
        let mut lo = 0usize;
        let mut hi = cands.len() - 1;
        let mut best = None;
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            if let Some(r) = self.retime_to_period_budgeted(cands[mid] as u64, budget)? {
                best = Some((r, cands[mid] as u64));
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            } else {
                lo = mid + 1;
            }
        }
        let (retiming, period) = best.expect("at least the maximum candidate is feasible");
        Ok(MinPeriodResult { retiming, period })
    }

    /// Among retimings achieving period `<= c`, one of minimum span, given
    /// `base` = the solver's normalized solution of the plain period-`c`
    /// system (what [`Self::retime_to_period`] returns). Binary-searches
    /// the span through the auxiliary-vertex encoding, warm-starting every
    /// probe from the last feasible one. Bit-identical to
    /// [`crate::span::min_span_retiming_reference`].
    pub fn min_span_from_base(&mut self, c: u64, base: &Retiming) -> Retiming {
        unbudgeted(self.min_span_from_base_budgeted(c, base, &Budget::unlimited()))
    }

    /// [`Self::min_span_from_base`] under a budget. On `Err`, the search
    /// produced no retiming (the caller still holds `base`, which remains
    /// a correct — if wider — solution).
    pub fn min_span_from_base_budgeted(
        &mut self,
        c: u64,
        base: &Retiming,
        budget: &Budget,
    ) -> Result<Retiming, Exhausted> {
        let c = c as i64;
        let n = self.csr.n;
        assert_eq!(base.len(), n, "base retiming size mismatch");
        if self.feas_c != c {
            // Reconstruct the raw fixpoint from the normalized base: the
            // maximal solution always has max = 0 (some node keeps its
            // virtual-source distance), so it is `base - max(base)`.
            let shift = base.max_value();
            for (slot, &b) in self.s.feas.iter_mut().zip(base.values()) {
                *slot = b - shift;
            }
            self.s.feas[n] = 0;
            self.feas_c = c;
        }
        self.materialize(self.csr.prefix_for(c));
        // The period fixpoint extended with z = 0 is quiescent for
        // s = span(base): z's tightest in-edge is min(r) + span = max(r) = 0.
        self.s.span_feas.copy_from_slice(&self.s.feas);
        self.s.span_feas[n] = 0;
        self.span_feas_s = base.span();
        let mut lo = 0i64;
        let mut hi = base.span();
        let mut best = base.clone();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if let Some(r) = self.solve_span_probe(mid, budget)? {
                best = r;
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        debug_assert!(best.is_legal(self.g));
        Ok(best)
    }

    /// Minimum-span retiming at period `<= c`, or `None` if infeasible.
    pub fn min_span(&mut self, c: u64) -> Option<Retiming> {
        let base = self.retime_to_period(c)?;
        Some(self.min_span_from_base(c, &base))
    }

    /// [`Self::min_span`] under a budget.
    pub fn min_span_budgeted(
        &mut self,
        c: u64,
        budget: &Budget,
    ) -> Result<Option<Retiming>, Exhausted> {
        let Some(base) = self.retime_to_period_budgeted(c, budget)? else {
            return Ok(None);
        };
        Ok(Some(self.min_span_from_base_budgeted(c, &base, budget)?))
    }

    /// One span probe at bound `s`, warm-started from the last feasible
    /// span snapshot (always valid: the binary search only probes below
    /// its feasible `hi`). `Ok(None)` = infeasible bound.
    fn solve_span_probe(&mut self, s: i64, budget: &Budget) -> Result<Option<Retiming>, Exhausted> {
        debug_assert!(self.span_feas_s != NO_SPAN && s <= self.span_feas_s);
        let n = self.csr.n;
        self.begin_solve();
        self.s.dist.copy_from_slice(&self.s.span_feas);
        // Only the `u -> z` edges changed weight (tightened to `s`); the
        // `z -> u` edges are weight-0 and quiescent until `z` drops.
        for u in 0..n {
            budget.charge(1)?;
            if !self.seed_edge(u, n, s) {
                return Ok(None);
            }
        }
        if !self.run(Some(s), budget)? {
            return Ok(None);
        }
        self.s.span_feas.copy_from_slice(&self.s.dist);
        self.span_feas_s = s;
        let mut r = Retiming::from_values(self.s.dist[..n].to_vec());
        r.normalize();
        debug_assert!(r.span() <= s);
        Ok(Some(r))
    }
}

/// Unwrap an unlimited-budget solve. An unlimited [`Budget`] cannot
/// exhaust, so the only possible `Err` is an injected fault from a chaos
/// plan — escalate it to a panic (the chaos harness catches and
/// classifies those).
fn unbudgeted<T>(res: Result<T, Exhausted>) -> T {
    res.unwrap_or_else(|e| panic!("unbudgeted solve interrupted: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minperiod::{
        constraints_for_period, min_period_retiming_reference, retime_to_period_reference,
    };
    use cred_dfg::gen;
    use rand::{rngs::StdRng, SeedableRng};

    fn random(seed: u64, nodes: usize) -> Dfg {
        gen::random_dfg(
            &mut StdRng::seed_from_u64(seed),
            &gen::RandomDfgConfig {
                nodes,
                max_delay: 3,
                max_time: 4,
                ..Default::default()
            },
        )
    }

    #[test]
    fn csr_counts_match_dense_system() {
        for seed in 0..10 {
            let g = random(seed, 9);
            let wd = WdMatrices::compute(&g);
            let csr = CsrConstraintGraph::build(&g, &wd);
            // Activating everything must reproduce the c = -1 system's
            // period-constraint count (before dedup: one per reachable
            // pair).
            let pairs = wd.activation_by_d().len();
            assert_eq!(csr.period_edge_count(), pairs);
            assert_eq!(csr.num_vars(), g.node_count());
        }
    }

    #[test]
    fn activation_prefix_matches_filter() {
        let g = random(3, 8);
        let wd = WdMatrices::compute(&g);
        let csr = CsrConstraintGraph::build(&g, &wd);
        for c in wd.candidate_periods() {
            let expect = wd
                .activation_by_d()
                .iter()
                .filter(|&&(d, _, _)| d > c)
                .count();
            assert_eq!(csr.prefix_for(c), expect);
        }
    }

    #[test]
    fn fixed_period_matches_reference_on_random_graphs() {
        for seed in 0..30 {
            let g = random(seed, 8);
            let wd = WdMatrices::compute(&g);
            let mut solver = RetimeSolver::new(&g, &wd);
            let cands = wd.candidate_periods();
            // Descending sweep (the warm path), then a loose re-probe.
            for &c in cands.iter().rev() {
                let fast = solver.retime_to_period(c as u64);
                let slow = retime_to_period_reference(&g, &wd, c as u64);
                assert_eq!(fast, slow, "seed {seed} period {c}");
            }
            let c = *cands.last().unwrap();
            assert_eq!(
                solver.retime_to_period(c as u64),
                retime_to_period_reference(&g, &wd, c as u64),
                "loosening back to {c}"
            );
        }
    }

    #[test]
    fn min_period_matches_reference() {
        for seed in 0..25 {
            let g = random(seed + 100, 9);
            let wd = WdMatrices::compute(&g);
            let fast = RetimeSolver::new(&g, &wd).min_period();
            let slow = min_period_retiming_reference(&g, &wd);
            assert_eq!(fast.period, slow.period, "seed {seed}");
            assert_eq!(fast.retiming, slow.retiming, "seed {seed}");
        }
    }

    #[test]
    fn infeasible_below_bound() {
        let g = gen::chain_with_feedback(6, 2); // bound 3
        let wd = WdMatrices::compute(&g);
        let mut solver = RetimeSolver::new(&g, &wd);
        assert!(solver.retime_to_period(2).is_none());
        assert!(solver.retime_to_period(3).is_some());
        // Warm state survives an infeasible probe.
        assert!(solver.retime_to_period(2).is_none());
        assert!(solver.retime_to_period(4).is_some());
    }

    #[test]
    fn span_search_matches_reference_dense_probes() {
        use crate::span::min_span_retiming_reference;
        for seed in 0..20 {
            let g = random(seed + 40, 8);
            let wd = WdMatrices::compute(&g);
            let mut solver = RetimeSolver::new(&g, &wd);
            let opt = solver.min_period();
            for c in [opt.period, opt.period + 1] {
                let fast = solver.min_span(c).unwrap();
                let slow = min_span_retiming_reference(&g, &wd, c).unwrap();
                assert_eq!(fast, slow, "seed {seed} period {c}");
            }
        }
    }

    #[test]
    fn scratch_reuse_across_graphs_is_clean() {
        let mut scratch = SolverScratch::new();
        for seed in 0..12 {
            let g = random(seed, 4 + (seed as usize % 7));
            let wd = WdMatrices::compute(&g);
            let mut solver = RetimeSolver::with_scratch(&g, &wd, scratch);
            let fast = solver.min_period();
            let slow = min_period_retiming_reference(&g, &wd);
            assert_eq!(fast.retiming, slow.retiming, "seed {seed}");
            scratch = solver.into_scratch();
        }
    }

    #[test]
    fn solutions_satisfy_the_dense_system() {
        for seed in 0..10 {
            let g = random(seed + 7, 8);
            let wd = WdMatrices::compute(&g);
            let mut solver = RetimeSolver::new(&g, &wd);
            let opt = solver.min_period();
            let sys = constraints_for_period(&g, &wd, opt.period as i64);
            // The raw fixpoint (pre-normalization snapshot) satisfies every
            // constraint of the dense reference system.
            assert!(sys.satisfied_by(&solver.s.feas[..g.node_count()]));
        }
    }
}
