//! The retiming solver validated end-to-end: `cred-verify` drives every
//! solver product (period search, span minimization, register
//! compaction, Theorem 4.5 projection) through code generation and
//! strict VM execution, so an illegal or non-minimal retiming surfaces
//! as a concrete wrong value or count — not just a violated invariant.

use cred_retime::min_period_retiming;
use cred_unfold::unfold;
use cred_verify::{fuzz_suite, random_case, CaseConfig, Executor, FuzzConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn solver_products_execute_correctly_across_the_pipeline() {
    let report = fuzz_suite(&FuzzConfig {
        cases: 80,
        seed: 17,
        case: CaseConfig::default(),
        shrink_failures: false,
        executor: Executor::Tape,
    });
    if let Some(f) = report.failures.first() {
        panic!("{}: {}", f.case, f.error);
    }
    assert!(report.by_order[0] > 0 && report.by_order[1] > 0);
}

#[test]
fn achieved_periods_never_regress_under_unfolding() {
    // The verifier reports the achieved period per case; the solver must
    // satisfy period(G_f) <= f * period(G) (unfolding can only help).
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = CaseConfig::default();
    for i in 0..30 {
        let c = random_case(&mut rng, format!("p{i}"), &cfg);
        let base = min_period_retiming(&c.graph).period;
        let unfolded = min_period_retiming(&unfold(&c.graph, c.f).graph).period;
        assert!(
            unfolded <= c.f as u64 * base,
            "{c}: period(G_f) = {unfolded} > f * period(G) = {}",
            c.f as u64 * base
        );
    }
}
