//! Property tests for the retiming engine.

use cred_dfg::algo::WdMatrices;
use cred_dfg::{algo, gen, Dfg, Ratio};
use cred_retime::feas::feas;
use cred_retime::minperiod::{min_period_retiming_reference, retime_to_period_reference};
use cred_retime::span::{compact_values, min_span_retiming, min_span_retiming_reference};
use cred_retime::{min_period_retiming, retime_to_period, RetimeSolver, Retiming};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn graph_from(seed: u64, nodes: usize) -> Dfg {
    gen::random_dfg(
        &mut StdRng::seed_from_u64(seed),
        &gen::RandomDfgConfig {
            nodes,
            forward_edge_prob: 0.35,
            back_edges: (nodes / 2).max(1),
            max_delay: 3,
            max_time: 3,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn opt_result_is_legal_normalized_and_achieves_period(
        seed in any::<u64>(), nodes in 2..12usize
    ) {
        let g = graph_from(seed, nodes);
        let res = min_period_retiming(&g);
        prop_assert!(res.retiming.is_legal(&g));
        prop_assert!(res.retiming.is_normalized());
        prop_assert_eq!(algo::cycle_period(&res.retiming.apply(&g)), Some(res.period));
    }

    #[test]
    fn opt_never_beats_iteration_bound(seed in any::<u64>(), nodes in 2..12usize) {
        let g = graph_from(seed, nodes);
        let res = min_period_retiming(&g);
        if let Some(b) = algo::iteration_bound(&g) {
            prop_assert!(Ratio::integer(res.period as i64) >= b);
        }
    }

    #[test]
    fn retiming_preserves_iteration_bound(seed in any::<u64>(), nodes in 2..10usize) {
        // The iteration bound is a cycle invariant: retiming moves delays
        // around cycles but conserves their totals.
        let g = graph_from(seed, nodes);
        let res = min_period_retiming(&g);
        let gr = res.retiming.apply(&g);
        prop_assert_eq!(algo::iteration_bound(&g), algo::iteration_bound(&gr));
    }

    #[test]
    fn retiming_conserves_cycle_delays(seed in any::<u64>(), nodes in 2..10usize) {
        // total_delays may change (non-cycle edges), but re-retiming back
        // by the negation restores the original graph exactly.
        let g = graph_from(seed, nodes);
        let res = min_period_retiming(&g);
        let gr = res.retiming.apply(&g);
        let neg = Retiming::from_values(
            res.retiming.values().iter().map(|&v| -v).collect(),
        );
        prop_assert!(neg.is_legal(&gr));
        let back = neg.apply(&gr);
        for e in g.edge_ids() {
            prop_assert_eq!(back.edge(e).delay, g.edge(e).delay);
        }
    }

    #[test]
    fn feas_and_opt_agree(seed in any::<u64>(), nodes in 2..9usize) {
        let g = graph_from(seed, nodes);
        let opt = min_period_retiming(&g);
        prop_assert!(feas(&g, opt.period).is_some());
        if opt.period > 1 {
            prop_assert!(feas(&g, opt.period - 1).is_none());
        }
    }

    #[test]
    fn feasibility_is_monotone_in_period(seed in any::<u64>(), nodes in 2..9usize) {
        let g = graph_from(seed, nodes);
        let opt = min_period_retiming(&g);
        for delta in 1..4u64 {
            prop_assert!(retime_to_period(&g, opt.period + delta).is_some());
        }
    }

    #[test]
    fn min_span_is_minimal(seed in any::<u64>(), nodes in 2..9usize) {
        // Exactness check: no legal retiming at the same period has a
        // smaller span (verified against the solver's own claim via a
        // second solve at span - 1).
        let g = graph_from(seed, nodes);
        let opt = min_period_retiming(&g);
        let tight = min_span_retiming(&g, opt.period).unwrap();
        prop_assert!(tight.is_legal(&g));
        prop_assert!(tight.span() <= opt.retiming.span());
        prop_assert_eq!(
            algo::cycle_period(&tight.apply(&g)),
            Some(opt.period)
        );
    }

    #[test]
    fn compaction_never_increases_registers(seed in any::<u64>(), nodes in 2..10usize) {
        let g = graph_from(seed, nodes);
        let opt = min_period_retiming(&g);
        let c = compact_values(&g, opt.period, &opt.retiming);
        prop_assert!(c.register_count() <= opt.retiming.register_count());
        prop_assert!(c.is_legal(&g));
        prop_assert!(algo::cycle_period(&c.apply(&g)).unwrap() <= opt.period);
    }

    #[test]
    fn incremental_min_period_is_bit_identical_to_reference(
        seed in any::<u64>(), nodes in 2..12usize
    ) {
        // The warm-started SPFA solver must reproduce the dense
        // Bellman–Ford oracle exactly: same period, same retiming values.
        let g = graph_from(seed, nodes);
        let wd = WdMatrices::compute(&g);
        let fast = RetimeSolver::new(&g, &wd).min_period();
        let slow = min_period_retiming_reference(&g, &wd);
        prop_assert_eq!(fast.period, slow.period);
        prop_assert_eq!(fast.retiming, slow.retiming);
    }

    #[test]
    fn incremental_fixed_period_probes_are_bit_identical(
        seed in any::<u64>(), nodes in 2..10usize
    ) {
        // Sweep every candidate period tightening (the warm path), then
        // loosen back: each probe must match the cold reference solve.
        let g = graph_from(seed, nodes);
        let wd = WdMatrices::compute(&g);
        let mut solver = RetimeSolver::new(&g, &wd);
        let cands = wd.candidate_periods();
        for &c in cands.iter().rev() {
            let fast = solver.retime_to_period(c as u64);
            let slow = retime_to_period_reference(&g, &wd, c as u64);
            prop_assert_eq!(fast, slow, "period {}", c);
        }
        let c = cands[cands.len() - 1];
        prop_assert_eq!(
            solver.retime_to_period(c as u64),
            retime_to_period_reference(&g, &wd, c as u64),
            "re-loosened period {}", c
        );
    }

    #[test]
    fn incremental_min_span_is_bit_identical_to_reference(
        seed in any::<u64>(), nodes in 2..10usize
    ) {
        let g = graph_from(seed, nodes);
        let wd = WdMatrices::compute(&g);
        let mut solver = RetimeSolver::new(&g, &wd);
        let opt = solver.min_period();
        for c in [opt.period, opt.period + 2] {
            let fast = solver.min_span(c).unwrap();
            let slow = min_span_retiming_reference(&g, &wd, c).unwrap();
            prop_assert_eq!(fast, slow, "period {}", c);
        }
    }

    #[test]
    fn prologue_plus_epilogue_is_v_times_m(seed in any::<u64>(), nodes in 2..12usize) {
        // The identity behind Table 1: sum r + sum (M - r) = |V| * M.
        let g = graph_from(seed, nodes);
        let r = min_period_retiming(&g).retiming;
        prop_assert_eq!(
            r.prologue_size() + r.epilogue_size(),
            g.node_count() as i64 * r.max_value()
        );
    }
}
