//! Exhaustion soundness: a budgeted solver run never produces a partial
//! or incorrect retiming. Under *any* work limit — including limits tiny
//! enough to interrupt the very first SPFA — the solver either finishes
//! with a result bit-identical to the dense reference oracle, or returns
//! the typed [`Exhausted`] error and leaves its warm state intact.

use cred_dfg::algo::WdMatrices;
use cred_dfg::{gen, Dfg};
use cred_resilience::{Budget, Exhausted};
use cred_retime::minperiod::min_period_retiming_reference;
use cred_retime::span::min_span_retiming_reference;
use cred_retime::RetimeSolver;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn graph_from(seed: u64, nodes: usize) -> Dfg {
    gen::random_dfg(
        &mut StdRng::seed_from_u64(seed),
        &gen::RandomDfgConfig {
            nodes,
            forward_edge_prob: 0.35,
            back_edges: (nodes / 2).max(1),
            max_delay: 3,
            max_time: 3,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiny_work_budget_is_all_or_nothing(
        seed in any::<u64>(), nodes in 2..10usize, limit in 0..60u64
    ) {
        let g = graph_from(seed, nodes);
        let wd = WdMatrices::compute(&g);
        let mut solver = RetimeSolver::new(&g, &wd);
        let budget = Budget::unlimited().with_work_limit(limit);
        match solver.min_period_budgeted(&budget) {
            Ok(res) => {
                // Finished within budget: must be bit-identical to the
                // dense reference oracle.
                let slow = min_period_retiming_reference(&g, &wd);
                prop_assert_eq!(res.period, slow.period);
                prop_assert_eq!(res.retiming, slow.retiming);
            }
            Err(Exhausted::WorkUnits { limit: l }) => prop_assert_eq!(l, limit),
            Err(other) => prop_assert!(false, "unexpected exhaustion kind: {}", other),
        }
        // Exhaustion must not corrupt the solver: an unlimited re-solve on
        // the same instance still matches the reference exactly.
        let res = solver.min_period();
        let slow = min_period_retiming_reference(&g, &wd);
        prop_assert_eq!(res.period, slow.period);
        prop_assert_eq!(res.retiming, slow.retiming);
    }

    #[test]
    fn budgeted_span_search_is_all_or_nothing(
        seed in any::<u64>(), nodes in 2..9usize, limit in 0..120u64
    ) {
        let g = graph_from(seed.wrapping_add(77), nodes);
        let wd = WdMatrices::compute(&g);
        let mut solver = RetimeSolver::new(&g, &wd);
        let opt = solver.min_period();
        let budget = Budget::unlimited().with_work_limit(limit);
        match solver.min_span_budgeted(opt.period, &budget) {
            Ok(Some(fast)) => {
                let slow = min_span_retiming_reference(&g, &wd, opt.period).unwrap();
                prop_assert_eq!(fast, slow);
            }
            Ok(None) => prop_assert!(false, "optimal period must be span-feasible"),
            Err(Exhausted::WorkUnits { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected exhaustion kind: {}", other),
        }
        // And the solver still answers correctly afterwards.
        let fast = solver.min_span(opt.period).unwrap();
        let slow = min_span_retiming_reference(&g, &wd, opt.period).unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn work_charged_grows_with_progress(seed in any::<u64>(), nodes in 3..9usize) {
        // Sanity on the charging scheme itself: an unlimited-but-counted
        // budget observes the same deterministic unit count on identical
        // runs (the proptest above relies on this determinism).
        let g = graph_from(seed.wrapping_add(31), nodes);
        let wd = WdMatrices::compute(&g);
        let count = |g: &Dfg| {
            let budget = Budget::unlimited().with_work_limit(u64::MAX);
            let mut solver = RetimeSolver::new(g, &wd);
            solver.min_period_budgeted(&budget).unwrap();
            budget.work_used()
        };
        let a = count(&g);
        let b = count(&g);
        prop_assert_eq!(a, b);
        prop_assert!(a > 0, "a real solve must charge at least one unit");
    }
}

#[test]
fn cancellation_interrupts_a_solve() {
    let g = gen::chain_with_feedback(8, 3);
    let wd = WdMatrices::compute(&g);
    let mut solver = RetimeSolver::new(&g, &wd);
    let tok = cred_resilience::CancelToken::new();
    tok.cancel();
    let budget = Budget::unlimited().with_cancel(tok);
    assert_eq!(
        solver.min_period_budgeted(&budget).unwrap_err(),
        Exhausted::Cancelled
    );
    // Still usable without the budget.
    let res = solver.min_period();
    assert_eq!(res.period, min_period_retiming_reference(&g, &wd).period);
}
