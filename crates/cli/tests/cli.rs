//! Drive the real `credc` binary end-to-end on the shipped kernel files.

#[test]
fn credc_binary_runs() {
    // Drive the real binary on a shipped kernel file.
    let exe = env!("CARGO_BIN_EXE_credc");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let out = std::process::Command::new(exe)
        .args(["analyze", &format!("{root}/kernels/figure3.loop")])
        .output()
        .expect("credc runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("minimum cycle period by retiming: 1"),
        "{stdout}"
    );
    assert!(stdout.contains("conditional registers: 4"), "{stdout}");

    let out = std::process::Command::new(exe)
        .args([
            "reduce",
            &format!("{root}/kernels/biquad.loop"),
            "--unfold",
            "3",
            "--n",
            "101",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verified"), "{stdout}");

    // Bad input fails cleanly.
    let out = std::process::Command::new(exe)
        .args(["analyze", "/nonexistent.loop"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
