//! Drive the real `credc` binary end-to-end on the shipped kernel files.

#[test]
fn credc_binary_runs() {
    // Drive the real binary on a shipped kernel file.
    let exe = env!("CARGO_BIN_EXE_credc");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let out = std::process::Command::new(exe)
        .args(["analyze", &format!("{root}/kernels/figure3.loop")])
        .output()
        .expect("credc runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("minimum cycle period by retiming: 1"),
        "{stdout}"
    );
    assert!(stdout.contains("conditional registers: 4"), "{stdout}");

    let out = std::process::Command::new(exe)
        .args([
            "reduce",
            &format!("{root}/kernels/biquad.loop"),
            "--unfold",
            "3",
            "--n",
            "101",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verified"), "{stdout}");

    // Bad input fails cleanly.
    let out = std::process::Command::new(exe)
        .args(["analyze", "/nonexistent.loop"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn credc_exact_proves_ii_and_reads_machine_files() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let kernel = format!("{root}/kernels/biquad.loop");
    // Builtin model by name.
    let out = run(&["exact", &kernel, "--machine", "scalar"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("proven minimum initiation interval: 8"),
        "{stdout}"
    );
    assert!(stdout.contains("II 1: resource-cap"), "{stdout}");
    // Committed machine file by path; the II comes out identical to the
    // same model's builtin.
    let out = run(&[
        "exact",
        &kernel,
        "--machine",
        &format!("{root}/machines/scalar.mach"),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("proven minimum initiation interval: 8"),
        "machine file drifted from builtin"
    );
    // Default is the unconstrained model: II equals the retiming bound.
    let out = run(&["exact", &kernel]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lower bound): 3"), "{stdout}");
    assert!(
        stdout.contains("proven minimum initiation interval: 3"),
        "{stdout}"
    );
    // Unknown model name fails with a one-line typed diagnostic.
    assert_clean_failure(&run(&["exact", &kernel, "--machine", "dsp56k"]), "dsp56k");
}

#[test]
fn credc_verify_pins_machine_models() {
    let out = run(&["verify", "--cases", "25", "--machine", "vliw2"]);
    assert!(out.status.success(), "{out:?}");
    assert_clean_failure(
        &run(&["verify", "--cases", "1", "--machine", "nope"]),
        "nope",
    );
}

fn run(args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_credc"))
        .args(args)
        .output()
        .expect("credc runs")
}

/// One-line typed diagnostic, exit code 1, and no panic backtrace.
fn assert_clean_failure(out: &std::process::Output, needle: &str) {
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains(needle), "stderr missing '{needle}': {err}");
    assert!(err.starts_with("credc: "), "untyped diagnostic: {err}");
    assert!(!err.contains("panicked"), "panic leaked to stderr: {err}");
    assert_eq!(err.trim_end().lines().count(), 1, "not one line: {err}");
}

#[test]
fn malformed_kernel_fails_with_one_line_diagnostic() {
    let dir = std::env::temp_dir().join(format!("credc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("garbage.loop");
    std::fs::write(&bad, "this is not a loop kernel {{{").unwrap();
    let badpath = bad.to_str().unwrap();
    for cmd in ["analyze", "reduce", "explore", "schedule"] {
        assert_clean_failure(&run(&[cmd, badpath]), "garbage.loop");
    }
    // The suite loader surfaces the same parse failure for directories.
    assert_clean_failure(&run(&["explore", dir.to_str().unwrap()]), "garbage.loop");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flag_combinations_fail_with_typed_errors() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let kernel = format!("{root}/kernels/figure3.loop");
    let kernels_dir = format!("{root}/kernels");
    assert_clean_failure(
        &run(&["explore", &kernel, "--strict", "--degraded-ok"]),
        "mutually exclusive",
    );
    assert_clean_failure(
        &run(&["explore", &kernel, "--deadline-ms", "nope"]),
        "bad number",
    );
    assert_clean_failure(
        &run(&["explore", &kernel, "--deadline-ms", "0"]),
        "--deadline-ms must be at least 1",
    );
    assert_clean_failure(
        &run(&["explore", &kernels_dir, "--deadline-ms", "50"]),
        "not supported for directory sweeps",
    );
    assert_clean_failure(&run(&["explore", &kernel, "--max-unfold"]), "needs a value");
    assert_clean_failure(&run(&["reduce", &kernel, "--mode", "sideways"]), "sideways");
    assert_clean_failure(&run(&["frobnicate", &kernel]), "unknown command");
}

#[test]
fn explore_frontier_and_register_cap() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let kernel = format!("{root}/kernels/figure3.loop");
    // --frontier appends the non-dominated table with the maxlive column.
    let out = run(&["explore", &kernel, "--max-unfold", "3", "--frontier"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("non-dominated frontier"), "{stdout}");
    assert!(stdout.contains("maxlive"), "{stdout}");
    // An unsatisfiable register cap empties the frontier but still lists
    // every swept point.
    let out = run(&[
        "explore",
        &kernel,
        "--max-unfold",
        "3",
        "--frontier",
        "--max-registers",
        "0",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("total registers <= 0"), "{stdout}");
    assert!(stdout.contains("empty"), "{stdout}");
    // --json emits the v3 objectives object, not the flat registers key.
    let out = run(&["explore", &kernel, "--max-unfold", "2", "--json"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"objectives\""), "{stdout}");
    assert!(stdout.contains("\"maxlive\""), "{stdout}");
    assert!(stdout.contains("\"cond_registers\""), "{stdout}");
    assert!(!stdout.contains("\"registers\""), "{stdout}");
    assert_clean_failure(
        &run(&["explore", &kernel, "--max-registers", "many"]),
        "bad number",
    );
}

#[test]
fn explore_accepts_resilience_flags() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let kernel = format!("{root}/kernels/figure3.loop");
    // A generous deadline on a tiny kernel: nothing degrades, exit 0,
    // and the table is identical to a plain sweep.
    let plain = run(&["explore", &kernel, "--max-unfold", "3"]);
    let budgeted = run(&[
        "explore",
        &kernel,
        "--max-unfold",
        "3",
        "--deadline-ms",
        "60000",
        "--strict",
    ]);
    assert!(budgeted.status.success(), "{budgeted:?}");
    assert_eq!(plain.stdout, budgeted.stdout);
    // --degraded-ok alone is accepted too.
    let ok = run(&["explore", &kernel, "--degraded-ok"]);
    assert!(ok.status.success(), "{ok:?}");
}

#[test]
fn serve_subcommand_runs_and_shuts_down_cleanly() {
    use std::io::{BufRead, BufReader, Write};

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let dir = std::env::temp_dir().join(format!("credc-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("metrics.json");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_credc"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--kernels",
            &format!("{root}/kernels"),
            "--metrics-dump",
            dump.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("credc serve starts");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected readiness line: {line}"))
        .to_string();

    let stream = std::net::TcpStream::connect(&addr).expect("connect to credc serve");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    let mut request = |line: &str| {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };
    let resp = request("{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":2,\"n\":31}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"schema_version\":3"), "{resp}");
    let resp = request("{\"type\":\"shutdown\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");

    let status = child.wait().expect("credc serve exits");
    assert!(status.success(), "server must exit cleanly: {status:?}");
    let dumped = std::fs::read_to_string(&dump).expect("metrics dump written");
    assert!(dumped.contains("\"explore_computes\":1"), "{dumped}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_bad_flags_with_typed_errors() {
    assert_clean_failure(&run(&["serve", "--workers", "0"]), "--workers must be");
    assert_clean_failure(&run(&["serve", "--cache-cap", "0"]), "--cache-cap must be");
    assert_clean_failure(
        &run(&["serve", "--deadline-ms", "0"]),
        "--deadline-ms must be at least 1",
    );
    assert_clean_failure(
        &run(&["serve", "--kernels", "/nonexistent-kernels"]),
        "is not a directory",
    );
}

#[test]
fn verify_subcommand_runs_on_both_executors() {
    // Same seed, same oracle — only the VM backend differs, so both runs
    // must come out clean and report the same case/program tallies.
    let tape = run(&["verify", "--cases", "10", "--seed", "3"]);
    assert!(tape.status.success(), "{tape:?}");
    let tape_out = String::from_utf8_lossy(&tape.stdout);
    assert!(tape_out.contains("on the tape executor"), "{tape_out}");
    let tree = run(&[
        "verify",
        "--cases",
        "10",
        "--seed",
        "3",
        "--executor",
        "tree",
    ]);
    assert!(tree.status.success(), "{tree:?}");
    let tree_out = String::from_utf8_lossy(&tree.stdout);
    assert!(tree_out.contains("on the tree executor"), "{tree_out}");
    assert_eq!(
        tape_out.replace("tape", "tree"),
        tree_out.as_ref(),
        "backends must report identical tallies"
    );
    assert_clean_failure(&run(&["verify", "--executor", "sideways"]), "sideways");
}

#[test]
fn chaos_subcommand_is_sound_and_quiet() {
    let out = run(&["chaos", "--cases", "15", "--seed", "0"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 silent corruption(s)"), "{stdout}");
    // Isolated injected panics must not spray backtraces.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "{stderr}");
}
