//! `credc` — drive the CRED framework from loop-kernel source files.
//!
//! ```text
//! credc analyze  <file.loop>                      graph analyses
//! credc reduce   <file.loop> [options]            generate + verify + print
//! credc explore  <file.loop|dir> [options]        design-space exploration
//! credc schedule <file.loop> [--alu N] [--mul N]  rotation scheduling
//! credc exact    <file.loop> [--machine M]        exact modulo scheduling
//! credc verify   [options]                        differential fuzzing
//! credc chaos    [options]                        fault-injection replay
//! credc serve    [options]                        evaluation server
//! credc call     [options]                        one request to a server
//! ```
//!
//! Options for `reduce`:
//!   --n N           trip count (default 101)
//!   --unfold F      unfolding factor (default 1)
//!   --mode M        percopy | bulk (default bulk)
//!   --print         print the generated programs
//! Options for `explore` (a directory sweeps every `*.loop` inside it):
//!   --budget L      code-size budget (instructions)
//!   --registers P   conditional-register budget
//!   --max-registers R  total-register cap (conditional + maxlive) for
//!                   the frontier; points over the cap are listed but
//!                   excluded from the non-dominated set
//!   --frontier      also print the four-axis non-dominated frontier
//!                   (code size, period, conditional registers, maxlive)
//!   --max-unfold F  largest factor to consider (default 4)
//!   --parallel T    worker threads for the memoized sweep (default 1)
//!   --json          emit the machine-readable suite report instead of tables
//!   --deadline-ms D wall-clock budget for the sweep's solves; on
//!                   exhaustion the sweep degrades (reference solver or
//!                   truncated coverage) instead of hanging
//!   --strict        exit 2 when any point degraded
//!   --degraded-ok   exit 0 on degradations (mutually exclusive with
//!                   --strict); either way degradations are printed
//! Options for `exact` (prove the minimum initiation interval under
//! resource constraints; see DESIGN.md "Exact scheduling"):
//!   --machine M     builtin model name (unconstrained | scalar | vliw2 |
//!                   vliw4) or a path to a `.mach` machine file
//!                   (default unconstrained)
//! Options for `verify` (see `cred-verify`; exit code 1 on any mismatch):
//!   --cases N       random cases to draw (default 200)
//!   --seed S        seed of the deterministic case stream (default 0)
//!   --machine M     pin every fuzz case to this machine model (builtin
//!                   name or `.mach` path) instead of sampling one per
//!                   case
//!   --shrink        minimize each failure before reporting it
//!   --corpus DIR    replay DIR/*.case first; with --shrink, save new
//!                   shrunk failures there
//!   --executor E    tape (compile to a flat instruction tape; default)
//!                   or tree (the tree-walking reference interpreter) —
//!                   same oracle, so `tree` cross-checks the compiler
//! Options for `chaos` (replay the oracle under seeded fault plans; exit
//! code 1 on any silent corruption — degradations and isolated panics
//! are the expected outcome under injection):
//!   --cases N       fault plans to replay (default 100)
//!   --seed S        seed of the case *and* plan streams (default 0)
//! Options for `serve` (long-running NDJSON-over-TCP evaluation server;
//! see DESIGN.md "Service" for the protocol):
//!   --addr A         bind address (default 127.0.0.1:7878; :0 = any port)
//!   --workers W      worker threads (default 4)
//!   --cache-cap C    shared plan-cache capacity (default 1024)
//!   --deadline-ms D  default per-request deadline (default: unlimited)
//!   --kernels DIR    serve DIR/*.loop by name (default: kernels/ if present)
//!   --max-inflight M explore requests admitted concurrently; beyond M the
//!                    server sheds with a typed `overloaded` error
//!                    (default 512)
//!   --metrics-dump F write a final metrics snapshot to F on shutdown
//!   --idle-timeout-ms I      close connections idle between requests for
//!                            I ms (default 60000; 0 disables)
//!   --progress-timeout-ms P  close connections that sit on a partial
//!                            request line or an undrainable response for
//!                            P ms (default 10000; 0 disables)
//! Options for `call` (send one NDJSON request line through the resilient
//! retrying client and print the response line; exit 1 when every retry
//! is exhausted):
//!   --addr A        server address (default 127.0.0.1:7878)
//!   --line L        the request line (default {"type":"ping"})
//!   --attempts N    retry budget across reconnects (default 24)
//!   --timeout-ms T  per-attempt read timeout (default 5000)
//!
//! Exit codes: 0 success, 1 error/failure, 2 degraded (under `--strict`).

use cred_codegen::pretty::render;
use cred_codegen::DecMode;
use cred_core::{CodeSizeReducer, ReducerConfig};
use cred_dfg::{algo, Dfg};
use cred_explore::ExploreRequest;
use cred_schedule::{list_schedule, rotation_schedule, FuConfig};
use cred_service::{ClientConfig, ResilientClient, Server, ServiceConfig};
use std::process::ExitCode;
use std::time::Duration;

/// Exit code for "the answer is correct but something gave way on the
/// road there" (degraded sweep under `--strict`). Distinct from plain
/// failure so scripts can tell the two apart.
const EXIT_DEGRADED: u8 = 2;

fn fail(msg: &str) -> ExitCode {
    eprintln!("credc: {msg}");
    ExitCode::FAILURE
}

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if matches!(
                    name,
                    "print" | "json" | "shrink" | "strict" | "degraded-ok" | "frontier"
                ) {
                    None
                } else {
                    Some(
                        it.next()
                            .ok_or_else(|| format!("--{name} needs a value"))?
                            .clone(),
                    )
                };
                flags.push((name.to_string(), value));
            } else {
                return Err(format!("unexpected argument '{a}'"));
            }
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number '{v}'")),
        }
    }
}

fn load(path: &str) -> Result<Dfg, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    cred_lang::parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn cmd_analyze(g: &Dfg) -> Result<(), String> {
    println!(
        "nodes: {}   edges: {}   delays: {}",
        g.node_count(),
        g.edge_count(),
        g.total_delays()
    );
    let period = algo::cycle_period(g)
        .ok_or_else(|| "graph has a zero-delay cycle (not a legal DFG)".to_string())?;
    println!("cycle period (unretimed): {period}");
    match algo::iteration_bound(g) {
        Some(b) => println!("iteration bound: {b} (= {:.3})", b.to_f64()),
        None => println!("iteration bound: none (acyclic)"),
    }
    let opt = cred_retime::min_period_retiming(g);
    println!("minimum cycle period by retiming: {}", opt.period);
    let r = cred_retime::span::min_span_retiming(g, opt.period)
        .ok_or_else(|| format!("period {} unexpectedly span-infeasible", opt.period))?;
    let r = cred_retime::span::compact_values(g, opt.period, &r);
    println!(
        "M_r (pipeline depth): {}   conditional registers: {}",
        r.max_value(),
        r.register_count()
    );
    print!("retiming:");
    for v in g.node_ids() {
        print!(" {}={}", g.node(v).name, r.get(v));
    }
    println!();
    Ok(())
}

fn cmd_reduce(g: Dfg, args: &Args) -> Result<(), String> {
    let n = args.get_u64("n", 101)?;
    if n > (1 << 40) {
        return Err("--n too large (max 2^40 iterations)".into());
    }
    let f = args.get_u64("unfold", 1)? as usize;
    if f < 1 {
        return Err("--unfold must be at least 1".into());
    }
    let mode = match args.get("mode").unwrap_or("bulk") {
        "bulk" => DecMode::Bulk,
        "percopy" => DecMode::PerCopy,
        m => return Err(format!("--mode: '{m}' (expected bulk|percopy)")),
    };
    let red = CodeSizeReducer::new(g)
        .with_config(ReducerConfig {
            unfold_factor: f,
            trip_count: n,
            dec_mode: mode,
            verify: true,
        })
        .run()
        .map_err(|e| format!("verification failed: {e}"))?;
    println!("all programs verified against the loop recurrence (n = {n})\n");
    for (name, size) in red.sizes() {
        println!("{name:>20}: {size:>5} instructions");
    }
    println!("\nreduction: {:.1}%", red.reduction_percent());
    if args.has("print") {
        println!("\n{}", render(&red.pipelined));
        println!("{}", render(&red.cred));
        if let Some(p) = &red.cred_retime_unfold {
            println!("{}", render(p));
        }
    }
    Ok(())
}

fn explore_params(args: &Args) -> Result<(u64, usize, usize), String> {
    let n = args.get_u64("n", 101)?;
    let max_f = args.get_u64("max-unfold", 4)? as usize;
    if max_f < 1 {
        return Err("--max-unfold must be at least 1".into());
    }
    let threads = args.get_u64("parallel", 1)? as usize;
    if threads < 1 {
        return Err("--parallel must be at least 1".into());
    }
    Ok((n, max_f, threads))
}

fn print_points(points: &[cred_explore::ParetoPoint]) {
    println!(
        "{:>3} {:>6} {:>11} {:>10} {:>12} {:>8} {:>8}",
        "f", "M_r", "plain size", "CRED size", "period", "P_r", "maxlive"
    );
    for p in points {
        println!(
            "{:>3} {:>6} {:>11} {:>10} {:>12} {:>8} {:>8}",
            p.f,
            p.m_r,
            p.plain_size,
            p.objectives.cred_size,
            p.objectives.iteration_period.to_string(),
            p.objectives.cond_registers,
            p.objectives.maxlive
        );
    }
}

/// `explore` on a directory: sweep every `*.loop` kernel in one batch,
/// sharing one plan cache across the suite.
fn cmd_explore_suite(dir: &std::path::Path, args: &Args) -> Result<(), String> {
    let (n, max_f, threads) = explore_params(args)?;
    for flag in ["deadline-ms", "strict", "degraded-ok"] {
        if args.has(flag) {
            return Err(format!("--{flag} is not supported for directory sweeps"));
        }
    }
    let kernels = cred_explore::suite::load_kernels(dir).map_err(|e| e.to_string())?;
    if kernels.is_empty() {
        return Err(format!("{}: no .loop kernels found", dir.display()));
    }
    let report = cred_explore::suite::explore_suite(&kernels, max_f, n, DecMode::Bulk, threads);
    if args.has("json") {
        print!("{}", report.to_json());
        return Ok(());
    }
    for k in &report.kernels {
        println!("== {} ({} nodes)", k.name, k.nodes);
        print_points(&k.points);
        println!();
    }
    println!(
        "plan cache: {} solves, {} hits",
        report.cache_misses, report.cache_hits
    );
    Ok(())
}

/// Resilience options of `explore`: wall-clock budget plus how degraded
/// runs map to exit codes. `--strict` and `--degraded-ok` are mutually
/// exclusive; without either, degradations are printed and exit 0 (the
/// answers are still bit-identical, only the road there gave way).
struct ResilienceOpts {
    deadline: Option<Duration>,
    strict: bool,
}

fn resilience_opts(args: &Args) -> Result<ResilienceOpts, String> {
    if args.has("strict") && args.has("degraded-ok") {
        return Err("--strict and --degraded-ok are mutually exclusive".into());
    }
    let mut deadline = None;
    if let Some(ms) = args.get("deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--deadline-ms: bad number '{ms}'"))?;
        if ms == 0 {
            return Err("--deadline-ms must be at least 1".into());
        }
        deadline = Some(Duration::from_millis(ms));
    }
    Ok(ResilienceOpts {
        deadline,
        strict: args.has("strict"),
    })
}

fn cmd_explore(path: &str, g: &Dfg, args: &Args) -> Result<ExitCode, String> {
    let (n, max_f, threads) = explore_params(args)?;
    let opts = resilience_opts(args)?;
    if args.has("json") {
        let name = std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.to_string());
        let kernels = vec![(name, g.clone())];
        let report = cred_explore::suite::explore_suite(&kernels, max_f, n, DecMode::Bulk, threads);
        print!("{}", report.to_json());
        return Ok(ExitCode::SUCCESS);
    }
    let mut request = ExploreRequest::new(g.clone())
        .max_f(max_f)
        .trip_count(n)
        .threads(threads)
        .strict(opts.strict);
    if let Some(cap) = args.get("max-registers") {
        let cap: usize = cap
            .parse()
            .map_err(|_| "--max-registers: bad number".to_string())?;
        request = request.max_registers(cap);
    }
    if let Some(d) = opts.deadline {
        request = request.deadline(d);
    }
    let resp = request.run_with(&cred_explore::cache::SweepCache::new());
    let resp = match resp {
        Ok(resp) => resp,
        Err(e) => {
            eprintln!("credc: {e}");
            return Ok(ExitCode::from(e.exit_code()));
        }
    };
    let report = &resp.report;
    print_points(&resp.points);
    if args.has("frontier") {
        match resp.opts.max_registers {
            Some(cap) => println!("\nnon-dominated frontier (total registers <= {cap}):"),
            None => println!("\nnon-dominated frontier:"),
        }
        if resp.frontier.is_empty() {
            println!("  (empty: every point exceeds the register cap)");
        } else {
            print_points(&resp.frontier);
        }
    }
    for o in report.degraded() {
        if let cred_explore::PointStatus::Degraded(ev) = &o.status {
            eprintln!("credc: degraded: {ev}");
        }
    }
    for o in report.failed() {
        if let cred_explore::PointStatus::Failed(msg) = &o.status {
            eprintln!("credc: failed: f = {}: {msg}", o.f);
        }
    }
    if !report.failed().is_empty() {
        return Err(format!(
            "{} of {} sweep point(s) failed",
            report.failed().len(),
            max_f
        ));
    }
    if let Some(budget) = args.get("budget") {
        let budget: usize = budget
            .parse()
            .map_err(|_| "--budget: bad number".to_string())?;
        match cred_explore::best_under_code_budget(g, budget, max_f, n, DecMode::Bulk) {
            Some(p) => println!(
                "\nbest under {budget} instructions: f = {}, period {}, size {}",
                p.f, p.objectives.iteration_period, p.objectives.cred_size
            ),
            None => println!("\nno configuration fits {budget} instructions"),
        }
    }
    if let Some(regs) = args.get("registers") {
        let regs: usize = regs
            .parse()
            .map_err(|_| "--registers: bad number".to_string())?;
        match cred_explore::best_under_register_budget(g, regs, max_f, n, DecMode::Bulk) {
            Some(p) => println!(
                "best under {regs} registers: f = {}, period {}, uses {}",
                p.f, p.objectives.iteration_period, p.objectives.cond_registers
            ),
            None => println!("no configuration fits {regs} registers"),
        }
    }
    let degraded = report.degraded().len();
    if degraded > 0 {
        eprintln!("credc: {degraded} of {max_f} sweep point(s) degraded");
        if opts.strict {
            return Ok(ExitCode::from(EXIT_DEGRADED));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_schedule(g: &Dfg, args: &Args) -> Result<(), String> {
    let alu = args.get_u64("alu", 2)? as usize;
    let mul = args.get_u64("mul", 1)? as usize;
    if alu < 1 || mul < 1 {
        return Err("--alu and --mul must be at least 1".into());
    }
    let fu = FuConfig::with_units(alu, mul);
    let init = list_schedule(g, &fu);
    let rot = rotation_schedule(g, &fu, g.node_count() * 8);
    println!("machine: {alu} ALU, {mul} MUL");
    println!("list schedule: {} control steps", init.length());
    println!("after rotation scheduling: {} control steps", rot.length);
    print!("rotation retiming:");
    for v in g.node_ids() {
        print!(" {}={}", g.node(v).name, rot.retiming.get(v));
    }
    println!();
    Ok(())
}

/// Resolve a `--machine` argument: a builtin model name, or a path to a
/// `.mach` machine-description file.
fn resolve_machine(spec: &str) -> Result<cred_exact::MachineModel, String> {
    if let Some(m) = cred_exact::MachineModel::builtin(spec) {
        return Ok(m);
    }
    let path = std::path::Path::new(spec);
    if !path.exists() {
        return Err(format!(
            "--machine: '{spec}' is neither a builtin model ({}) nor a readable file",
            cred_exact::MachineModel::BUILTIN_NAMES.join(" | ")
        ));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{spec}: {e}"))?;
    cred_exact::MachineModel::parse(&text).map_err(|e| format!("{spec}: {e}"))
}

/// `credc exact`: prove the kernel's minimum initiation interval on a
/// machine model and show the schedule plus the per-rung infeasibility
/// witnesses that certify optimality.
fn cmd_exact(g: &Dfg, args: &Args) -> Result<(), String> {
    let machine = resolve_machine(args.get("machine").unwrap_or("unconstrained"))?;
    let lower = cred_retime::min_period_retiming(g).period;
    let sched = cred_exact::exact_schedule(g, &machine);
    cred_exact::check::check_schedule(g, &machine, &sched)
        .map_err(|e| format!("schedule failed independent validation: {e}"))?;
    println!("machine: {}", machine.name);
    println!("retiming-only period (resource-blind lower bound): {lower}");
    println!("proven minimum initiation interval: {}", sched.ii);
    println!(
        "\n{:>12} {:>6} {:>6} {:>6}",
        "node", "stage", "slot", "time"
    );
    for v in g.node_ids() {
        println!(
            "{:>12} {:>6} {:>6} {:>6}",
            g.node(v).name,
            sched.stage[v.index()],
            sched.slot[v.index()],
            machine.op_time(g, v)
        );
    }
    if sched.rejected.is_empty() {
        println!("\nII 1 is feasible; no smaller interval exists.");
    } else {
        println!("\ninfeasibility certificates for every smaller interval:");
        for rung in &sched.rejected {
            println!("  II {}: {}", rung.ii, rung.witness);
        }
    }
    Ok(())
}

/// `credc verify`: replay the committed corpus, then fuzz the full
/// transformation pipeline against the VM and the closed-form size
/// theorems. Any mismatch is a nonzero exit.
fn cmd_verify(args: &Args) -> Result<(), String> {
    let cases = args.get_u64("cases", 200)? as usize;
    let seed = args.get_u64("seed", 0)?;
    let corpus_dir = args.get("corpus").map(std::path::PathBuf::from);
    let executor = match args.get("executor").unwrap_or("tape") {
        "tape" => cred_verify::Executor::Tape,
        "tree" => cred_verify::Executor::Tree,
        other => return Err(format!("--executor: 'tape' or 'tree', not '{other}'")),
    };
    let machine = args.get("machine").map(resolve_machine).transpose()?;

    let mut failures = 0usize;
    if let Some(dir) = &corpus_dir {
        if !dir.is_dir() {
            return Err(format!("--corpus: {} is not a directory", dir.display()));
        }
        let corpus = cred_verify::corpus::load_dir(dir)?;
        for case in &corpus {
            if let Err(e) = cred_verify::verify_case_on(case, executor) {
                eprintln!("corpus {case}\n  {e}");
                failures += 1;
            }
        }
        println!(
            "corpus: {} case(s) replayed, {} failure(s)",
            corpus.len(),
            failures
        );
    }

    let report = cred_verify::fuzz_suite(&cred_verify::FuzzConfig {
        cases,
        seed,
        case: cred_verify::CaseConfig {
            machine,
            ..cred_verify::CaseConfig::default()
        },
        shrink_failures: args.has("shrink"),
        executor,
    });
    println!(
        "fuzz: {} case(s) on the {} executor (seed {seed}; {} retime-unfold, {} unfold-retime), \
         {} program(s) executed and diffed, {} failure(s)",
        report.cases_run,
        match executor {
            cred_verify::Executor::Tape => "tape",
            cred_verify::Executor::Tree => "tree",
        },
        report.by_order[0],
        report.by_order[1],
        report.programs_checked,
        report.failures.len()
    );
    for f in &report.failures {
        eprintln!("FAIL {}\n  {}", f.case, f.error);
        if let Some((small, err)) = &f.shrunk {
            eprintln!("  shrunk to {small}\n  {err}");
            if let Some(dir) = &corpus_dir {
                let path = dir.join(format!("{}.case", small.label));
                cred_verify::corpus::save_case(small, &path).map_err(|e| e.to_string())?;
                eprintln!("  saved reproducer to {}", path.display());
            }
        }
    }
    failures += report.failures.len();
    if failures > 0 {
        return Err(format!("{failures} verification failure(s)"));
    }
    Ok(())
}

/// `credc chaos`: replay the differential oracle under seeded fault
/// plans. Degradations and isolated panics are the *expected* outcome
/// under injection; the only failure is a silent corruption (a run that
/// passed with answers differing from its fault-free baseline).
fn cmd_chaos(args: &Args) -> Result<(), String> {
    let cases = args.get_u64("cases", 100)? as usize;
    let seed = args.get_u64("seed", 0)?;
    let report = cred_verify::chaos_suite(&cred_verify::ChaosConfig {
        cases,
        seed,
        ..cred_verify::ChaosConfig::default()
    });
    println!(
        "chaos: {} fault plan(s) replayed (seed {seed}): {} clean, {} degraded, \
         {} faulted (isolated), {} silent corruption(s)",
        report.cases_run,
        report.clean,
        report.degraded,
        report.faulted,
        report.corruptions().len()
    );
    for c in &report.incidents {
        if c.outcome.is_corruption() {
            eprintln!("CORRUPTION {c}");
        }
    }
    if !report.is_sound() {
        return Err(format!(
            "{} silent corruption(s) — a fault changed an answer without raising an error",
            report.corruptions().len()
        ));
    }
    Ok(())
}

/// `credc serve`: run the evaluation server until a client sends a
/// `shutdown` request. Prints one `listening on ADDR` line once the
/// socket is bound, so scripts can wait for readiness.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let workers = args.get_u64("workers", 4)? as usize;
    let cache_cap = args.get_u64("cache-cap", 1024)? as usize;
    let max_in_flight = args.get_u64("max-inflight", 512)? as usize;
    if workers < 1 {
        return Err("--workers must be at least 1".into());
    }
    if cache_cap < 1 {
        return Err("--cache-cap must be at least 1".into());
    }
    if max_in_flight < 1 {
        return Err("--max-inflight must be at least 1".into());
    }
    let mut default_deadline = None;
    if let Some(ms) = args.get("deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--deadline-ms: bad number '{ms}'"))?;
        if ms == 0 {
            return Err("--deadline-ms must be at least 1".into());
        }
        default_deadline = Some(Duration::from_millis(ms));
    }
    // Named kernels: an explicit --kernels dir must exist; without the
    // flag, kernels/ is picked up when present and skipped when not.
    let kernels_dir = match args.get("kernels") {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            if !dir.is_dir() {
                return Err(format!("--kernels: {} is not a directory", dir.display()));
            }
            Some(dir)
        }
        None => {
            let default = std::path::PathBuf::from("kernels");
            default.is_dir().then_some(default)
        }
    };
    // Lifecycle deadlines: 0 disables a clock, absent keeps the default.
    let defaults = ServiceConfig::default();
    let lifecycle = |name: &str, default: Option<Duration>| -> Result<Option<Duration>, String> {
        match args.get(name) {
            None => Ok(default),
            Some(v) => {
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("--{name}: bad number '{v}'"))?;
                Ok((ms > 0).then(|| Duration::from_millis(ms)))
            }
        }
    };
    let idle_timeout = lifecycle("idle-timeout-ms", defaults.idle_timeout)?;
    let progress_timeout = lifecycle("progress-timeout-ms", defaults.progress_timeout)?;
    let server = Server::bind(ServiceConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers,
        cache_capacity: cache_cap,
        default_deadline,
        kernels_dir,
        metrics_dump: args.get("metrics-dump").map(std::path::PathBuf::from),
        max_in_flight,
        idle_timeout,
        progress_timeout,
        ..defaults
    })
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {addr}");
    server.run().map_err(|e| e.to_string())
}

/// `credc call`: one request line through the resilient client. The
/// retry/backoff/breaker policy is the same one `loadgen` uses, so a
/// scripted `credc call` survives the transient faults a bare `nc`
/// would report as failures.
fn cmd_call(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let line = args.get("line").unwrap_or("{\"type\":\"ping\"}");
    let attempts = args.get_u64("attempts", 24)?;
    if attempts < 1 {
        return Err("--attempts must be at least 1".into());
    }
    let timeout_ms = args.get_u64("timeout-ms", 5000)?;
    if timeout_ms < 1 {
        return Err("--timeout-ms must be at least 1".into());
    }
    let mut client = ResilientClient::new(
        addr,
        ClientConfig {
            max_attempts: attempts as u32,
            read_timeout: Duration::from_millis(timeout_ms),
            ..ClientConfig::default()
        },
    );
    let response = client.request(line).map_err(|e| e.to_string())?;
    println!("{}", response.trim_end());
    let stats = client.stats();
    if stats.retries > 0 {
        eprintln!(
            "credc call: delivered after {} retries ({} reconnects)",
            stats.retries, stats.reconnects
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return fail(
            "usage: credc <analyze|reduce|explore|schedule|exact|verify|chaos|serve|call> <file.loop> [options]",
        );
    };
    // `verify`, `chaos`, `serve`, and `call` take options but no input file.
    if cmd == "verify" || cmd == "chaos" || cmd == "serve" || cmd == "call" {
        let run = match cmd.as_str() {
            "verify" => cmd_verify,
            "chaos" => cmd_chaos,
            "call" => cmd_call,
            _ => cmd_serve,
        };
        return match Args::parse(rest).and_then(|args| run(&args)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        };
    }
    let Some((path, raw_flags)) = rest.split_first() else {
        return fail("missing input file");
    };
    let args = match Args::parse(raw_flags) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    if cmd == "explore" && std::path::Path::new(path).is_dir() {
        return match cmd_explore_suite(std::path::Path::new(path), &args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        };
    }
    let g = match load(path) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let result = match cmd.as_str() {
        "analyze" => cmd_analyze(&g).map(|()| ExitCode::SUCCESS),
        "reduce" => cmd_reduce(g, &args).map(|()| ExitCode::SUCCESS),
        "explore" => cmd_explore(path, &g, &args),
        "schedule" => cmd_schedule(&g, &args).map(|()| ExitCode::SUCCESS),
        "exact" => cmd_exact(&g, &args).map(|()| ExitCode::SUCCESS),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(code) => code,
        Err(e) => fail(&e),
    }
}
