//! The closed-form [`ExpectedCounts`] predictions checked against every
//! generator on fuzz-generated graphs, driven through `cred-verify`'s
//! case generator (which samples the same parameter space as CI's
//! `verify-smoke` job).

use cred_codegen::cred::cred_rotating;
use cred_codegen::{DecMode, ExpectedCounts};
use cred_explore::cache::compute_plan;
use cred_verify::{random_case, verify_case, CaseConfig, TransformOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn static_and_dynamic_counts_hold_on_fuzzed_cases() {
    let mut rng = StdRng::seed_from_u64(23);
    let cfg = CaseConfig::default();
    for i in 0..50 {
        let c = random_case(&mut rng, format!("cg{i}"), &cfg);
        let report = verify_case(&c).unwrap_or_else(|e| panic!("{c}: {e}"));
        // The oracle's report carries the measured numbers; sanity-check
        // the invariant the formulas encode: every program executes the
        // same n * L useful computes, whatever its static size.
        let useful = c.n * c.graph.node_count() as u64;
        for p in &report.programs {
            assert_eq!(
                p.computes_executed, useful,
                "{c}: {} executed {} useful computes, want {useful}",
                p.name, p.computes_executed
            );
        }
    }
}

#[test]
fn rotating_variant_counts_match_bulk_minus_decrements() {
    // `cred_rotating` is bulk CRED with hardware auto-decrement: same
    // guards, same registers, `P` fewer explicit instructions.
    let mut rng = StdRng::seed_from_u64(31);
    let cfg = CaseConfig::default();
    let mut exercised = 0;
    for i in 0..40 {
        let c = random_case(&mut rng, format!("rot{i}"), &cfg);
        if c.order != TransformOrder::RetimeUnfold {
            continue;
        }
        let r = compute_plan(&c.graph, c.f).projected;
        let expect = ExpectedCounts::cred_rotating(&c.graph, &r, c.f, c.n);
        let p = cred_rotating(&c.graph, &r, c.f, c.n);
        expect
            .check_static(&p)
            .unwrap_or_else(|e| panic!("{c}: {e}"));
        let bulk = ExpectedCounts::cred_retime_unfold(&c.graph, &r, c.f, c.n, DecMode::Bulk);
        assert_eq!(expect.registers, bulk.registers, "{c}");
        assert_eq!(
            expect.code_size + expect.registers.min(bulk.code_size),
            bulk.code_size.max(expect.code_size),
            "{c}: rotating must save exactly the explicit decrements"
        );
        exercised += 1;
    }
    assert!(
        exercised >= 10,
        "only {exercised} retime-unfold cases drawn"
    );
}
