//! Property tests: measured instruction counts of generated programs equal
//! the paper's closed-form code sizes, for random graphs and retimings.

use cred_codegen::cred::{cred_retime_unfold, cred_unfolded};
use cred_codegen::pipeline::pipelined_program;
use cred_codegen::unfolded::{retime_unfold_program, unfolded_program};
use cred_codegen::{size, DecMode};
use cred_dfg::{gen, Dfg};
use cred_retime::min_period_retiming;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn graph_from(seed: u64, nodes: usize) -> Dfg {
    gen::random_dfg(
        &mut StdRng::seed_from_u64(seed),
        &gen::RandomDfgConfig {
            nodes,
            forward_edge_prob: 0.3,
            back_edges: (nodes / 2).max(1),
            max_delay: 3,
            max_time: 1,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipelined_size_formula(seed in any::<u64>(), nodes in 2..10usize, n in 1..40u64) {
        let g = graph_from(seed, nodes);
        let r = min_period_retiming(&g).retiming;
        prop_assume!(r.max_value() < n as i64); // closed form needs a kernel: n > M
        let p = pipelined_program(&g, &r, n);
        prop_assert_eq!(
            p.code_size() as u64,
            size::pipelined_size(nodes as u64, nodes as u64, r.max_value() as u64)
        );
    }

    #[test]
    fn cred_size_formulas(seed in any::<u64>(), nodes in 2..10usize, f in 1..5usize) {
        let g = graph_from(seed, nodes);
        let r = min_period_retiming(&g).retiming;
        let p_regs = r.register_count() as u64;
        let bulk = cred_retime_unfold(&g, &r, f, 101, DecMode::Bulk);
        prop_assert_eq!(
            bulk.code_size() as u64,
            size::cred_retime_unfold_size_bulk(nodes as u64, p_regs, f as u64)
        );
        let per = cred_retime_unfold(&g, &r, f, 101, DecMode::PerCopy);
        prop_assert_eq!(
            per.code_size() as u64,
            size::cred_retime_unfold_size_percopy(nodes as u64, p_regs, f as u64)
        );
        // Bulk never larger than per-copy; equal only at f = 1.
        prop_assert!(bulk.code_size() <= per.code_size());
        if f == 1 {
            prop_assert_eq!(bulk.code_size(), per.code_size());
        }
    }

    #[test]
    fn unfolded_size_formula(seed in any::<u64>(), nodes in 2..9usize, f in 1..5usize, n in 1..80u64) {
        let g = graph_from(seed, nodes);
        prop_assume!(n >= f as u64); // the unfolded loop must exist
        let p = unfolded_program(&g, f, n);
        prop_assert_eq!(
            p.code_size() as u64,
            size::unfolded_size(nodes as u64, f as u64, n)
        );
        let c = cred_unfolded(&g, f, n, DecMode::Bulk);
        prop_assert_eq!(
            c.code_size() as u64,
            size::cred_unfolded_size(nodes as u64, f as u64)
        );
    }

    #[test]
    fn retime_unfold_size_formula(seed in any::<u64>(), nodes in 2..9usize, f in 1..5usize, n in 1..80u64) {
        let g = graph_from(seed, nodes);
        let r = min_period_retiming(&g).retiming;
        let m = r.max_value() as u64;
        prop_assume!(n >= m + f as u64); // kernel of f full slots must exist
        let p = retime_unfold_program(&g, &r, f, n);
        let l = nodes as u64;
        // Executable-program remainder: (n - M) mod f slots.
        let expect = (m + f as u64) * l + ((n - m) % f as u64) * l;
        prop_assert_eq!(p.code_size() as u64, expect);
    }

    #[test]
    fn cred_loop_trip_counts(seed in any::<u64>(), nodes in 2..8usize, f in 1..5usize, n in 1..60u64) {
        // The CRED loop runs ceil((n + M + Q_head)/f) times; at f = 1 that
        // is the paper's n + M_r.
        let g = graph_from(seed, nodes);
        let r = min_period_retiming(&g).retiming;
        let m = r.max_value() as u64;
        let p = cred_retime_unfold(&g, &r, f, n, DecMode::Bulk);
        let l = p.body.as_ref().unwrap();
        let qhead = ((f as u64) - m % f as u64) % f as u64;
        prop_assert_eq!(l.trip_count(), (n + m + qhead).div_ceil(f as u64));
        if f == 1 {
            prop_assert_eq!(l.trip_count(), n + m);
        }
    }

    #[test]
    fn dynamic_size_of_cred_close_to_baseline(seed in any::<u64>(), nodes in 2..8usize, n in 10..60u64) {
        // CRED trades static size for a few extra dynamic iterations
        // (n + M instead of n - M kernel runs) plus decrements; the
        // overhead is bounded by (2M + ...) * body + registers.
        let g = graph_from(seed, nodes);
        let r = min_period_retiming(&g).retiming;
        let m = r.max_value() as u64;
        prop_assume!(m <= n);
        let pip = pipelined_program(&g, &r, n);
        let cred = cred_retime_unfold(&g, &r, 1, n, DecMode::Bulk);
        let body = nodes as u64;
        let p_regs = r.register_count() as u64;
        // pipelined dynamic = n * body (each instance once).
        prop_assert_eq!(pip.dynamic_size(), n * body);
        // cred dynamic = (n + M) * (body + P) + P setups.
        prop_assert_eq!(
            cred.dynamic_size(),
            (n + m) * (body + p_regs) + p_regs
        );
    }
}
