//! Pretty-printer producing listings in the style of the paper's figures.
//!
//! ```text
//! setup p1 = 0 : -n
//! for i = -2 to n do
//!     (p1) A[i+3] = add(E[i-1])
//!     p1 = p1 - 1
//! end
//! ```

use crate::ir::{Inst, LoopProgram, Ref};
use std::fmt::Write as _;

fn fmt_ref(p: &LoopProgram, r: &Ref) -> String {
    format!("{}[{}]", p.arrays[r.array as usize], r.index)
}

fn fmt_inst(p: &LoopProgram, inst: &Inst, indent: &str, out: &mut String) {
    match inst {
        Inst::Compute {
            guard,
            dest,
            op,
            srcs,
        } => {
            let g = match guard {
                Some(g) if g.offset == 0 => format!("(p{}) ", g.reg.0 + 1),
                Some(g) => format!("(p{}-{}) ", g.reg.0 + 1, g.offset),
                None => String::new(),
            };
            let args: Vec<String> = srcs.iter().map(|s| fmt_ref(p, s)).collect();
            let _ = writeln!(
                out,
                "{indent}{g}{} = {}({})",
                fmt_ref(p, dest),
                op.mnemonic(),
                args.join(", ")
            );
        }
        Inst::Setup { reg, init, bound } => {
            let b = if *bound == -(p.n as i64) {
                "-n".to_string()
            } else {
                bound.to_string()
            };
            let _ = writeln!(out, "{indent}setup p{} = {init} : {b}", reg.0 + 1);
        }
        Inst::Dec { reg, by } => {
            let _ = writeln!(out, "{indent}p{0} = p{0} - {by}", reg.0 + 1);
        }
    }
}

/// Render the whole program.
pub fn render(p: &LoopProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// {} (n = {}, {} instructions)",
        p.name,
        p.n,
        p.code_size()
    );
    for inst in &p.pre {
        fmt_inst(p, inst, "", &mut out);
    }
    if let Some(l) = &p.body {
        let step = if l.step == 1 {
            String::new()
        } else {
            format!(" by {}", l.step)
        };
        let hi = if l.hi == p.n as i64 {
            "n".to_string()
        } else {
            l.hi.to_string()
        };
        let _ = writeln!(out, "for i = {} to {hi}{step} do", l.lo);
        for inst in &l.body {
            fmt_inst(p, inst, "    ", &mut out);
        }
        let _ = writeln!(out, "end");
    }
    for inst in &p.post {
        fmt_inst(p, inst, "", &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::cred_pipelined;
    use crate::pipeline::{original_program, pipelined_program};
    use cred_dfg::{DfgBuilder, OpKind};
    use cred_retime::Retiming;

    fn tiny() -> cred_dfg::Dfg {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(1));
        let c = b.node("B", 1, OpKind::Mul(0));
        b.edge(a, c, 0);
        b.edge(c, a, 2);
        b.build().unwrap()
    }

    #[test]
    fn renders_original_loop() {
        let g = tiny();
        let s = render(&original_program(&g, 10));
        assert!(s.contains("for i = 1 to n do"));
        assert!(s.contains("A[i] = add(B[i-2])"));
        assert!(s.contains("B[i] = mul(A[i])"));
        assert!(s.ends_with("end\n"));
    }

    #[test]
    fn renders_pipelined_with_prologue() {
        let g = tiny();
        let mut r = Retiming::zero(2);
        r.set(g.find_node("A").unwrap(), 1);
        let s = render(&pipelined_program(&g, &r, 10));
        assert!(s.contains("A[1] = add(B[-1])"));
        assert!(s.contains("B[n] = mul(A[n])"));
    }

    #[test]
    fn renders_cred_with_setup_and_guards() {
        let g = tiny();
        let mut r = Retiming::zero(2);
        r.set(g.find_node("A").unwrap(), 1);
        let s = render(&cred_pipelined(&g, &r, 10));
        assert!(s.contains("setup p1 = 0 : -n"), "{s}");
        assert!(s.contains("setup p2 = 1 : -n"), "{s}");
        assert!(s.contains("(p1) A[i+1]"), "{s}");
        assert!(s.contains("(p2) B[i]"), "{s}");
        assert!(s.contains("p1 = p1 - 1"), "{s}");
        assert!(s.contains("for i = 0 to n do"), "{s}");
    }

    #[test]
    fn renders_bulk_guard_offsets() {
        let g = tiny();
        let r = Retiming::zero(2);
        let p = crate::cred::cred_unfolded(&g, 3, 10, crate::DecMode::Bulk);
        let _ = r;
        let s = render(&p);
        assert!(s.contains("(p1-1)"), "{s}");
        assert!(s.contains("(p1-2)"), "{s}");
        assert!(s.contains("p1 = p1 - 3"), "{s}");
        assert!(s.contains("by 3"), "{s}");
    }
}
