//! Unfolded-loop generators (baselines without conditional registers):
//!
//! * [`unfolded_program`] — plain unfolding (Figure 5(a)): a kernel of `f`
//!   body copies plus `n mod f` remainder iterations outside the loop;
//! * [`retime_unfold_program`] — retime first, then unfold (§3.4 /
//!   Theorem 4.5 baseline);
//! * [`unfold_retime_program`] — unfold first, then software-pipeline the
//!   unfolded loop (Theorem 4.4 baseline).

use crate::ir::{Index, Inst, LoopProgram, LoopSpec};
use crate::pipeline::{array_names, instance};
use cred_dfg::{algo, Dfg};
use cred_retime::Retiming;
use cred_unfold::Unfolded;

/// Retime `g` by (normalized) `r`, then unfold the pipelined loop by `f`.
///
/// Structure: prologue (kernel instances at non-positive slots), a loop
/// whose body holds `f` consecutive kernel instances, then straight-line
/// leftover full slots and the epilogue. Code size for `n >= M_r`:
/// `(M_r + f) * L + ((n - M_r) mod f) * L`.
///
/// Note the remainder term: the *correct* program has `(n - M_r) mod f`
/// leftover kernel slots (the kernel covers `n - M_r` slots); the paper's
/// tables use `Q_f = (n mod f) * L`, an `|M_r mod f|`-slot discrepancy
/// documented in EXPERIMENTS.md.
pub fn retime_unfold_program(g: &Dfg, r: &Retiming, f: usize, n: u64) -> LoopProgram {
    // No error channel here: an injected `Error` escalates to a panic,
    // which the resilient sweep isolates per point.
    cred_resilience::failpoint::hit_infallible(cred_resilience::failpoint::sites::CODEGEN_UNFOLD);
    assert!(f >= 1);
    assert!(r.is_normalized(), "retiming must be normalized");
    assert!(r.is_legal(g), "retiming must be legal");
    let gr = r.apply(g);
    let order = algo::zero_delay_topo_order(&gr).expect("retimed graph well-formed");
    let m = r.max_value();
    let n = n as i64;
    let f_i = f as i64;

    let emit_slot = |s: i64, mk: &dyn Fn(i64) -> Index, out: &mut Vec<Inst>| {
        for &v in &order {
            let idx = s + r.get(v);
            if (1..=n).contains(&idx) {
                out.push(instance(g, v, mk(idx), None));
            }
        }
    };

    let mut pre = Vec::new();
    for s in (1 - m)..=0 {
        emit_slot(s, &|idx| Index::Const(idx), &mut pre);
    }
    // Full slots are 1 ..= n - m; the loop takes floor((n-m)/f) chunks.
    let full = (n - m).max(0);
    let chunks = full / f_i;
    let body = if chunks >= 1 {
        let mut body = Vec::with_capacity(f * order.len());
        for j in 0..f_i {
            for &v in &order {
                body.push(instance(g, v, Index::i_plus(j + r.get(v)), None));
            }
        }
        Some(LoopSpec {
            lo: 1,
            hi: f_i * (chunks - 1) + 1,
            step: f_i,
            body,
            auto_dec: None,
        })
    } else {
        None
    };
    // Leftover full slots, then epilogue slots, all straight-line.
    let mut post = Vec::new();
    for s in (f_i * chunks + 1).max(1)..=n {
        emit_slot(s, &|idx| Index::NPlus(idx - n), &mut post);
    }
    LoopProgram {
        name: if m == 0 {
            "unfolded".into()
        } else {
            "retime-unfold".into()
        },
        n: n as u64,
        arrays: array_names(g),
        pre,
        body,
        post,
    }
}

/// Plain unfolding by `f` (Figure 5(a)): the zero-retiming special case of
/// [`retime_unfold_program`]. Code size `f * L + (n mod f) * L`.
pub fn unfolded_program(g: &Dfg, f: usize, n: u64) -> LoopProgram {
    retime_unfold_program(g, &Retiming::zero(g.node_count()), f, n)
}

/// Unfold `g` by `f`, then software-pipeline the unfolded loop with a
/// (normalized) retiming `r_f` over the unfolded nodes.
///
/// The unfolded loop has `N = floor(n/f)` iterations; the `n mod f`
/// remainder iterations of the original loop are emitted straight-line
/// after the epilogue. Code size for `N >= M_{f,r}`:
/// `(M_{f,r} + 1) * f * L + (n mod f) * L` (Theorem 4.4).
pub fn unfold_retime_program(g: &Dfg, u: &Unfolded, r_f: &Retiming, n: u64) -> LoopProgram {
    let f = u.factor;
    assert_eq!(
        u.original_nodes,
        g.node_count(),
        "unfolded graph does not belong to g"
    );
    assert!(r_f.is_normalized(), "retiming must be normalized");
    assert!(r_f.is_legal(&u.graph), "retiming must be legal for G_f");
    let gfr = r_f.apply(&u.graph);
    let order = algo::zero_delay_topo_order(&gfr).expect("retimed G_f well-formed");
    let n = n as i64;
    let f_i = f as i64;
    let big_n = n / f_i; // unfolded trip count
    let m = r_f.max_value();

    // Original iteration handled by unfolded node w at unfolded iteration K.
    let orig_iter = |w: cred_dfg::NodeId, k_expr: Index| -> (cred_dfg::NodeId, Index) {
        let (orig, j) = u.origin(w);
        let idx = match k_expr {
            Index::Const(k) => Index::Const(f_i * (k - 1) + j as i64 + 1),
            Index::Loop { scale, offset } => Index::Loop {
                scale: scale * f_i,
                offset: f_i * (offset - 1) + j as i64 + 1,
            },
            Index::NPlus(_) => unreachable!("unfold-retime uses Const/Loop only"),
        };
        (orig, idx)
    };

    let emit_slot = |s: i64, out: &mut Vec<Inst>| {
        for &w in &order {
            let k = s + r_f.get(w);
            if (1..=big_n).contains(&k) {
                let (orig, idx) = orig_iter(w, Index::Const(k));
                out.push(instance(g, orig, idx, None));
            }
        }
    };

    let mut pre = Vec::new();
    for s in (1 - m)..=0 {
        emit_slot(s, &mut pre);
    }
    let body = if big_n - m >= 1 {
        Some(LoopSpec {
            lo: 1,
            hi: big_n - m,
            step: 1,
            body: order
                .iter()
                .map(|&w| {
                    let (orig, idx) = orig_iter(
                        w,
                        Index::Loop {
                            scale: 1,
                            offset: r_f.get(w),
                        },
                    );
                    instance(g, orig, idx, None)
                })
                .collect(),
            auto_dec: None,
        })
    } else {
        None
    };
    let mut post = Vec::new();
    for s in (big_n - m + 1).max(1)..=big_n {
        emit_slot(s, &mut post);
    }
    // Remainder original iterations f*N+1 ..= n.
    let orig_order = algo::zero_delay_topo_order(g).expect("well-formed");
    for it in (f_i * big_n + 1)..=n {
        for &v in &orig_order {
            post.push(instance(g, v, Index::NPlus(it - n), None));
        }
    }
    LoopProgram {
        name: "unfold-retime".into(),
        n: n as u64,
        arrays: array_names(g),
        pre,
        body,
        post,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::{DfgBuilder, OpKind};
    use cred_unfold::unfold;

    /// Figure 4: A[i] = B[i-3]*3; B[i] = A[i]+7; C[i] = B[i]*2.
    fn figure4_graph() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Mul(3));
        let bb = b.node("B", 1, OpKind::Add(7));
        let c = b.node("C", 1, OpKind::Mul(2));
        b.edge(bb, a, 3);
        b.edge(a, bb, 0);
        b.edge(bb, c, 0);
        b.build().unwrap()
    }

    #[test]
    fn figure5a_unfolded_structure() {
        // f = 3, n = 11 (n mod f = 2): kernel of 9 instructions + 6
        // remainder instructions, exactly Figure 5(a).
        let g = figure4_graph();
        let p = unfolded_program(&g, 3, 11);
        assert!(p.pre.is_empty());
        let body = p.body.as_ref().unwrap();
        assert_eq!(body.body.len(), 9);
        assert_eq!(body.step, 3);
        assert_eq!(body.lo, 1);
        // Loop covers 1..=9: i = 1, 4, 7.
        assert_eq!(body.hi, 7);
        assert_eq!(body.trip_count(), 3);
        assert_eq!(p.post.len(), 6); // 2 remainder iterations x 3 nodes
        assert_eq!(p.code_size(), 15); // f*L + (n mod f)*L = 9 + 6
    }

    #[test]
    fn unfolded_divisible_has_no_remainder() {
        let g = figure4_graph();
        let p = unfolded_program(&g, 3, 12);
        assert_eq!(p.post.len(), 0);
        assert_eq!(p.code_size(), 9);
        assert_eq!(p.body.as_ref().unwrap().trip_count(), 4);
    }

    /// The Figure 6 loop: like Figure 4 but with `B[i] = A[i-1] + 7`, the
    /// only reading under which the paper's `r(B) = 1` retiming and the
    /// Figure 7(c) execution sequence (`A[0], B[1], C[0], ...`) are
    /// consistent (the figure's printed `B[i] = A[i]+7` would make
    /// `r(B) = 1` illegal on the zero-delay edge A -> B).
    fn figure6_graph() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Mul(3));
        let bb = b.node("B", 1, OpKind::Add(7));
        let c = b.node("C", 1, OpKind::Mul(2));
        b.edge(bb, a, 3);
        b.edge(a, bb, 1);
        b.edge(bb, c, 0);
        b.build().unwrap()
    }

    #[test]
    fn retime_unfold_size_formula() {
        // r(B) = 1 (Figure 6's pipelining); M = 1; f = 3.
        let g = figure6_graph();
        let mut r = Retiming::zero(3);
        r.set(g.find_node("B").unwrap(), 1);
        assert!(r.is_legal(&g));
        for n in [10u64, 11, 12, 13, 100, 101] {
            let p = retime_unfold_program(&g, &r, 3, n);
            let l = 3i64;
            let m = 1i64;
            let expect = m * l + 3 * l + (((n as i64 - m) % 3) * l);
            assert_eq!(p.code_size() as i64, expect, "n = {n}");
        }
    }

    #[test]
    fn unfold_retime_size_formula() {
        let g = figure4_graph();
        let n = 101u64;
        let f = 3usize;
        let u = unfold(&g, f);
        let opt = cred_retime::min_period_retiming(&u.graph);
        let p = unfold_retime_program(&g, &u, &opt.retiming, n);
        let l = g.node_count() as i64;
        let m = opt.retiming.max_value();
        // Prologue+epilogue counts are sums of r over V_f (no clipping for
        // N=33 >> M).
        let sum_r: i64 = opt.retiming.values().iter().sum();
        let sum_rest: i64 = opt.retiming.values().iter().map(|&x| m - x).sum();
        let expect = sum_r + f as i64 * l + sum_rest + (n as i64 % f as i64) * l;
        assert_eq!(p.code_size() as i64, expect);
        // And the closed form (M+1)*f*L + Q_f matches, since
        // sum_r + sum_rest = M * |V_f| = M * f * L.
        assert_eq!(
            p.code_size() as i64,
            (m + 1) * f as i64 * l + (n as i64 % f as i64) * l
        );
    }

    #[test]
    fn unfold_retime_small_n_no_loop() {
        let g = figure4_graph();
        let u = unfold(&g, 3);
        let r = Retiming::zero(u.graph.node_count());
        let p = unfold_retime_program(&g, &u, &r, 2); // n < f: N = 0
        assert!(p.body.is_none());
        assert_eq!(p.compute_count(), 6); // remainder only: 2 iterations
    }

    #[test]
    fn remainder_indexes_are_n_relative() {
        let g = figure4_graph();
        let p = unfolded_program(&g, 3, 11);
        // Last remainder instruction writes C[n].
        let Inst::Compute { dest, .. } = p.post.last().unwrap() else {
            panic!("expected compute");
        };
        assert_eq!(dest.index, Index::NPlus(0));
    }
}
