//! Closed-form code-size accounting (paper §4), cross-checked by property
//! tests against instruction counts of the actual generated programs.

/// `L + |V| * M_r`: software-pipelined loop (Table 1 "Ret."). For
/// unit-size instructions `L = |V|`, giving `(M_r + 1) * L`.
pub fn pipelined_size(l: u64, nodes: u64, m_r: u64) -> u64 {
    l + nodes * m_r
}

/// `L + 2 * P_r`: CRED-reduced software-pipelined loop (Table 1 "CR").
pub fn cred_pipelined_size(l: u64, p_r: u64) -> u64 {
    l + 2 * p_r
}

/// `Q_f = (n mod f) * L`: remainder code of an unfolded loop (paper §4).
pub fn q_f(n: u64, f: u64, l: u64) -> u64 {
    (n % f) * l
}

/// `f * L + Q_f`: plain unfolded loop (Figure 5(a)).
pub fn unfolded_size(l: u64, f: u64, n: u64) -> u64 {
    f * l + q_f(n, f, l)
}

/// `f * L + 2`: CRED-reduced unfolded loop — one register (§3.3).
pub fn cred_unfolded_size(l: u64, f: u64) -> u64 {
    f * l + 2
}

/// `(M_r + f) * L + Q_f`: retime-then-unfold (Theorem 4.5, the paper's
/// published accounting with `Q_f` computed from the *original* `n`).
pub fn retime_unfold_size(l: u64, m_r: u64, f: u64, n: u64) -> u64 {
    (m_r + f) * l + q_f(n, f, l)
}

/// `(M_{f,r} + 1) * f * L + Q_f`: unfold-then-retime (Theorem 4.4).
pub fn unfold_retime_size(l: u64, m_fr: u64, f: u64, n: u64) -> u64 {
    (m_fr + 1) * f * l + q_f(n, f, l)
}

/// `f * L + P * (f + 1)`: CRED retime-then-unfold with per-copy decrements
/// (Table 2's accounting).
pub fn cred_retime_unfold_size_percopy(l: u64, p: u64, f: u64) -> u64 {
    f * l + p * (f + 1)
}

/// `f * L + 2 * P`: CRED retime-then-unfold with one bulk decrement
/// (Tables 3–4's accounting).
pub fn cred_retime_unfold_size_bulk(l: u64, p: u64, f: u64) -> u64 {
    f * l + 2 * p
}

/// Maximum unfolding factor under a code-size budget `L_req`, given the
/// retimed loop: `M_f = floor(L_req / L) - M_r` (paper §4). Returns 0 when
/// the budget does not even fit the retimed kernel.
pub fn max_unfolding_factor(l_req: u64, l: u64, m_r: u64) -> u64 {
    (l_req / l).saturating_sub(m_r)
}

/// Maximum retiming depth under a code-size budget for a fixed unfolding
/// factor: `M_r = floor(L_req / L) - f` (paper §4).
pub fn max_retiming_value(l_req: u64, l: u64, f: u64) -> u64 {
    (l_req / l).saturating_sub(f)
}

/// Percentage reduction from `before` to `after`, as the paper reports
/// ("% Red.").
pub fn reduction_percent(before: u64, after: u64) -> f64 {
    if before == 0 {
        0.0
    } else {
        100.0 * (before.saturating_sub(after)) as f64 / before as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_closed_forms() {
        // (L, M_r, P_r, Ret., CR) rows of Table 1.
        let rows = [
            (8u64, 1u64, 2u64, 16u64, 12u64), // IIR
            (11, 2, 3, 33, 17),               // Differential equation
            (15, 3, 4, 60, 23),               // All-pole
            (26, 2, 3, 78, 32),               // 4-stage lattice
            (27, 1, 2, 54, 31),               // Volterra
        ];
        for (l, m, p, ret, cr) in rows {
            assert_eq!(pipelined_size(l, l, m), ret);
            assert_eq!(cred_pipelined_size(l, p), cr);
        }
    }

    #[test]
    fn table2_closed_forms() {
        // n = 101, f = 3; (L, M_r, P_r, R-U, CR) rows of Table 2 that are
        // internally consistent (see EXPERIMENTS.md for the two slips).
        let rows = [
            (8u64, 1u64, 2u64, 48u64, 32u64),
            (11, 2, 3, 77, 45),
            (15, 3, 4, 120, 61),
            (26, 2, 3, 182, 90),
        ];
        for (l, m, p, ru, cr) in rows {
            assert_eq!(retime_unfold_size(l, m, 3, 101), ru);
            assert_eq!(cred_retime_unfold_size_percopy(l, p, 3), cr);
        }
    }

    #[test]
    fn table4_closed_forms() {
        // 4-stage lattice (L = 26, P = 3). Table 4's CR row decomposes as
        // f*L + P*(f+1): per-copy accounting (Table 3's decomposes as
        // f*L + 2*P: bulk — both modes appear in the paper's own numbers).
        assert_eq!(cred_retime_unfold_size_percopy(26, 3, 2), 61);
        assert_eq!(cred_retime_unfold_size_percopy(26, 3, 3), 90);
        assert_eq!(cred_retime_unfold_size_percopy(26, 3, 4), 119);
        // Table 3 (L = 5, P = 2), bulk accounting.
        assert_eq!(cred_retime_unfold_size_bulk(5, 2, 2), 14);
        assert_eq!(cred_retime_unfold_size_bulk(5, 2, 3), 19);
        assert_eq!(cred_retime_unfold_size_bulk(5, 2, 4), 24);
        // unfold-retime row: M_{f,r} = 2, 3, 3.
        assert_eq!(unfold_retime_size(26, 2, 2, 101), 156 + q_f(101, 2, 26));
        // (the paper's Table 4 omits Q_f; with n divisible it matches:)
        assert_eq!(unfold_retime_size(26, 2, 2, 100), 156);
        assert_eq!(unfold_retime_size(26, 3, 3, 99), 312);
        assert_eq!(unfold_retime_size(26, 3, 4, 100), 416);
        // retime-unfold row: M_r = 3 throughout.
        assert_eq!(retime_unfold_size(26, 3, 2, 100), 130);
        assert_eq!(retime_unfold_size(26, 3, 3, 99), 156);
        assert_eq!(retime_unfold_size(26, 3, 4, 100), 182);
    }

    #[test]
    fn remainder_code() {
        assert_eq!(q_f(101, 3, 8), 16);
        assert_eq!(q_f(99, 3, 8), 0);
        assert_eq!(unfolded_size(10, 3, 98), 30 + 20);
        assert_eq!(cred_unfolded_size(10, 3), 32);
    }

    #[test]
    fn budget_formulas() {
        // Paper §4: L_req budget, original body L.
        assert_eq!(max_unfolding_factor(64, 8, 1), 7);
        assert_eq!(max_unfolding_factor(8, 8, 3), 0);
        assert_eq!(max_retiming_value(64, 8, 3), 5);
        assert_eq!(max_retiming_value(10, 8, 3), 0);
    }

    #[test]
    fn reduction_percentages_match_table1() {
        let close = |a: f64, b: f64| (a - b).abs() < 0.05;
        assert!(close(reduction_percent(16, 12), 25.0));
        assert!(close(reduction_percent(33, 17), 48.5));
        assert!(close(reduction_percent(60, 23), 61.7));
        assert!(close(reduction_percent(68, 40), 41.2));
        assert!(close(reduction_percent(78, 32), 59.0));
        assert!(close(reduction_percent(54, 31), 42.6));
        assert_eq!(reduction_percent(0, 0), 0.0);
    }
}
