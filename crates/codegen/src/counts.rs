//! Machine-checkable per-transformation expectations.
//!
//! Every generator in this crate has closed-form static *and* dynamic
//! instruction counts implied by the paper's theorems: code size (§4),
//! register count (Theorem 4.3/4.7), loop trip count, and — for the
//! guarded CRED forms — exactly `n` enabled executions per node with the
//! rest nullified (Theorems 4.1/4.2/4.6). [`ExpectedCounts`] packages
//! those predictions so an external oracle (`cred-verify`) can compare
//! them against the generated [`LoopProgram`] and against what `cred-vm`
//! actually executed, with no hand-written per-case numbers.

use crate::cred::DecMode;
use crate::ir::LoopProgram;
use cred_dfg::Dfg;
use cred_retime::Retiming;
use cred_unfold::Unfolded;

/// Closed-form predictions for one generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedCounts {
    /// Static instruction count ([`LoopProgram::code_size`]).
    pub code_size: usize,
    /// Static compute-instruction count ([`LoopProgram::compute_count`]).
    pub compute_count: usize,
    /// Distinct conditional registers ([`LoopProgram::register_count`]).
    pub registers: usize,
    /// Loop trip count (0 when the program has no loop).
    pub trip_count: u64,
    /// Guard-enabled compute executions: always `n * |V|`.
    pub computes_executed: u64,
    /// Guard-disabled compute executions (0 for unguarded programs).
    pub computes_nullified: u64,
}

/// Instances of the slot `s` that land in `1..=n` under retiming `r` —
/// the clipping rule shared by every prologue/epilogue emitter.
fn slot_count(g: &Dfg, r: &Retiming, s: i64, n: i64) -> usize {
    g.node_ids()
        .filter(|&v| (1..=n).contains(&(s + r.get(v))))
        .count()
}

impl ExpectedCounts {
    /// [`crate::pipeline::original_program`]: code size `L`, no guards.
    pub fn original(g: &Dfg, n: u64) -> ExpectedCounts {
        let l = g.node_count();
        ExpectedCounts {
            code_size: l,
            compute_count: l,
            registers: 0,
            trip_count: n,
            computes_executed: n * l as u64,
            computes_nullified: 0,
        }
    }

    /// [`crate::pipeline::pipelined_program`]: explicit prologue/kernel/
    /// epilogue; `L + |V| * M_r` for `n >= M_r`, clipped below that.
    pub fn pipelined(g: &Dfg, r: &Retiming, n: u64) -> ExpectedCounts {
        let l = g.node_count();
        let m = r.max_value();
        let n_i = n as i64;
        let pre: usize = ((1 - m)..=0).map(|s| slot_count(g, r, s, n_i)).sum();
        let trip = (n_i - m).max(0) as u64;
        let kernel = if trip > 0 { l } else { 0 };
        let post: usize = ((n_i - m + 1).max(1)..=n_i)
            .map(|s| slot_count(g, r, s, n_i))
            .sum();
        let size = pre + kernel + post;
        ExpectedCounts {
            code_size: size,
            compute_count: size,
            registers: 0,
            trip_count: trip,
            computes_executed: n * l as u64,
            computes_nullified: 0,
        }
    }

    /// [`crate::cred::cred_retime_unfold`]: guarded kernel only; size
    /// `f*L + P*(f+1)` (per-copy) or `f*L + 2P` (bulk); the loop visits
    /// `ceil((n + M_r + Q_head)/f)` iterations of `f*L` guarded computes,
    /// exactly `n*L` of which execute.
    pub fn cred_retime_unfold(
        g: &Dfg,
        r: &Retiming,
        f: usize,
        n: u64,
        mode: DecMode,
    ) -> ExpectedCounts {
        let l = g.node_count();
        let p = r.register_count();
        let m = r.max_value();
        let f_i = f as i64;
        let qhead = (f_i - m.rem_euclid(f_i)) % f_i;
        let total_slots = n as i64 + m + qhead;
        let trip = (total_slots + f_i - 1).div_euclid(f_i).max(0) as u64;
        let decs = match mode {
            DecMode::PerCopy => f * p,
            DecMode::Bulk => p,
        };
        let visited = trip * (f * l) as u64;
        let executed = n * l as u64;
        ExpectedCounts {
            code_size: f * l + p + decs,
            compute_count: f * l,
            registers: p,
            trip_count: trip,
            computes_executed: executed,
            computes_nullified: visited - executed,
        }
    }

    /// [`crate::cred::cred_pipelined`]: the `f = 1`, bulk special case —
    /// `L + 2 * P_r` (Theorem 4.3's `S_ret`).
    pub fn cred_pipelined(g: &Dfg, r: &Retiming, n: u64) -> ExpectedCounts {
        ExpectedCounts::cred_retime_unfold(g, r, 1, n, DecMode::Bulk)
    }

    /// [`crate::cred::cred_rotating`]: bulk CRED with hardware auto-
    /// decrement — all explicit decrements removed, `f*L + P`.
    pub fn cred_rotating(g: &Dfg, r: &Retiming, f: usize, n: u64) -> ExpectedCounts {
        let mut c = ExpectedCounts::cred_retime_unfold(g, r, f, n, DecMode::Bulk);
        c.code_size -= c.registers; // the P explicit Dec instructions
        c
    }

    /// [`crate::unfolded::retime_unfold_program`] (zero retiming:
    /// [`crate::unfolded::unfolded_program`]): prologue, `f`-copy kernel
    /// running `floor((n - M_r)/f)` times, leftover + epilogue
    /// straight-line.
    pub fn retime_unfold(g: &Dfg, r: &Retiming, f: usize, n: u64) -> ExpectedCounts {
        let l = g.node_count();
        let m = r.max_value();
        let n_i = n as i64;
        let f_i = f as i64;
        let pre: usize = ((1 - m)..=0).map(|s| slot_count(g, r, s, n_i)).sum();
        let chunks = (n_i - m).max(0) / f_i;
        let kernel = if chunks >= 1 { f * l } else { 0 };
        let post: usize = ((f_i * chunks + 1).max(1)..=n_i)
            .map(|s| slot_count(g, r, s, n_i))
            .sum();
        let size = pre + kernel + post;
        ExpectedCounts {
            code_size: size,
            compute_count: size,
            registers: 0,
            trip_count: chunks.max(0) as u64,
            computes_executed: n * l as u64,
            computes_nullified: 0,
        }
    }

    /// [`crate::unfolded::unfold_retime_program`]: software-pipelined
    /// unfolded loop (`N = floor(n/f)` iterations) plus `n mod f`
    /// straight-line remainder iterations — Theorem 4.4's baseline.
    pub fn unfold_retime(g: &Dfg, u: &Unfolded, r_f: &Retiming, n: u64) -> ExpectedCounts {
        let l = g.node_count();
        let f_i = u.factor as i64;
        let big_n = n as i64 / f_i;
        let m = r_f.max_value();
        let pre: usize = ((1 - m)..=0)
            .map(|s| slot_count(&u.graph, r_f, s, big_n))
            .sum();
        let trip = (big_n - m).max(0) as u64;
        let kernel = if trip > 0 { u.factor * l } else { 0 };
        let epi: usize = ((big_n - m + 1).max(1)..=big_n)
            .map(|s| slot_count(&u.graph, r_f, s, big_n))
            .sum();
        let remainder = (n as usize % u.factor) * l;
        let size = pre + kernel + epi + remainder;
        ExpectedCounts {
            code_size: size,
            compute_count: size,
            registers: 0,
            trip_count: trip,
            computes_executed: n * l as u64,
            computes_nullified: 0,
        }
    }

    /// [`crate::cred::cred_unfold_retime`]: guarded unfolded kernel
    /// running `N + M_{f,r}` times plus straight-line remainder — size
    /// `f*L + 2*P_f + (n mod f)*L`; `M_{f,r} * f * L` computes nullified.
    pub fn cred_unfold_retime(g: &Dfg, u: &Unfolded, r_f: &Retiming, n: u64) -> ExpectedCounts {
        let l = g.node_count();
        let f = u.factor;
        let p_f = r_f.register_count();
        let big_n = n as i64 / f as i64;
        let m = r_f.max_value();
        let trip = (big_n + m).max(0) as u64;
        let remainder = (n as usize % f) * l;
        let visited = trip * (f * l) as u64;
        let in_loop = big_n as u64 * (f * l) as u64;
        ExpectedCounts {
            code_size: f * l + 2 * p_f + remainder,
            compute_count: f * l + remainder,
            registers: p_f,
            trip_count: trip,
            computes_executed: in_loop + remainder as u64,
            computes_nullified: visited - in_loop,
        }
    }

    /// Compare the static predictions against a generated program.
    pub fn check_static(&self, p: &LoopProgram) -> Result<(), String> {
        let mismatch = |what: &str, got: u64, want: u64| {
            Err(format!(
                "{}: {what} = {got}, closed form says {want}",
                p.name
            ))
        };
        if p.code_size() != self.code_size {
            return mismatch("code_size", p.code_size() as u64, self.code_size as u64);
        }
        if p.compute_count() != self.compute_count {
            return mismatch(
                "compute_count",
                p.compute_count() as u64,
                self.compute_count as u64,
            );
        }
        if p.register_count() != self.registers {
            return mismatch(
                "register_count",
                p.register_count() as u64,
                self.registers as u64,
            );
        }
        let trip = p.body.as_ref().map_or(0, |l| l.trip_count());
        if trip != self.trip_count {
            return mismatch("trip_count", trip, self.trip_count);
        }
        Ok(())
    }

    /// Compare the dynamic predictions against what the VM reported
    /// (`ExecResult::computes_executed` / `computes_nullified`).
    pub fn check_dynamic(&self, executed: u64, nullified: u64) -> Result<(), String> {
        if executed != self.computes_executed {
            return Err(format!(
                "computes_executed = {executed}, closed form says {}",
                self.computes_executed
            ));
        }
        if nullified != self.computes_nullified {
            return Err(format!(
                "computes_nullified = {nullified}, closed form says {}",
                self.computes_nullified
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::{
        cred_pipelined, cred_retime_unfold, cred_rotating, cred_unfold_retime, cred_unfolded,
    };
    use crate::pipeline::{original_program, pipelined_program};
    use crate::unfolded::{retime_unfold_program, unfold_retime_program, unfolded_program};
    use cred_dfg::{DfgBuilder, OpKind};
    use cred_unfold::unfold;

    fn figure3_graph() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(9));
        let bb = b.node("B", 1, OpKind::Mul(5));
        let c = b.node("C", 1, OpKind::Add(0));
        let d = b.node("D", 1, OpKind::Mul(0));
        let e = b.node("E", 1, OpKind::Add(30));
        b.edge(e, a, 4);
        b.edge(a, bb, 0);
        b.edge(a, c, 0);
        b.edge(bb, c, 2);
        b.edge(a, d, 0);
        b.edge(c, d, 0);
        b.edge(d, e, 0);
        b.build().unwrap()
    }

    #[test]
    fn static_predictions_match_generators() {
        let g = figure3_graph();
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        let zero = Retiming::zero(g.node_count());
        // Small n exercises the clipped (n < M_r) paths too.
        for n in [0u64, 1, 2, 3, 5, 10, 101] {
            ExpectedCounts::original(&g, n)
                .check_static(&original_program(&g, n))
                .unwrap();
            ExpectedCounts::pipelined(&g, &r, n)
                .check_static(&pipelined_program(&g, &r, n))
                .unwrap();
            ExpectedCounts::cred_pipelined(&g, &r, n)
                .check_static(&cred_pipelined(&g, &r, n))
                .unwrap();
            for f in 1..=4usize {
                for mode in [DecMode::PerCopy, DecMode::Bulk] {
                    ExpectedCounts::cred_retime_unfold(&g, &r, f, n, mode)
                        .check_static(&cred_retime_unfold(&g, &r, f, n, mode))
                        .unwrap();
                    ExpectedCounts::cred_retime_unfold(&g, &zero, f, n, mode)
                        .check_static(&cred_unfolded(&g, f, n, mode))
                        .unwrap();
                }
                ExpectedCounts::cred_rotating(&g, &r, f, n)
                    .check_static(&cred_rotating(&g, &r, f, n))
                    .unwrap();
                ExpectedCounts::retime_unfold(&g, &r, f, n)
                    .check_static(&retime_unfold_program(&g, &r, f, n))
                    .unwrap();
                ExpectedCounts::retime_unfold(&g, &zero, f, n)
                    .check_static(&unfolded_program(&g, f, n))
                    .unwrap();
                let u = unfold(&g, f);
                let opt = cred_retime::min_period_retiming(&u.graph);
                ExpectedCounts::unfold_retime(&g, &u, &opt.retiming, n)
                    .check_static(&unfold_retime_program(&g, &u, &opt.retiming, n))
                    .unwrap();
                ExpectedCounts::cred_unfold_retime(&g, &u, &opt.retiming, n)
                    .check_static(&cred_unfold_retime(&g, &u, &opt.retiming, n))
                    .unwrap();
            }
        }
    }

    #[test]
    fn dynamic_predictions_are_internally_consistent() {
        // Guarded visits = trip * body computes must decompose into
        // exactly n*L executed plus the predicted nullified count.
        let g = figure3_graph();
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        for n in [0u64, 3, 10, 101] {
            for f in 1..=4usize {
                let c = ExpectedCounts::cred_retime_unfold(&g, &r, f, n, DecMode::Bulk);
                assert_eq!(
                    c.computes_executed + c.computes_nullified,
                    c.trip_count * (f * g.node_count()) as u64
                );
                assert_eq!(c.computes_executed, n * g.node_count() as u64);
            }
        }
    }

    #[test]
    fn check_static_reports_deviations() {
        let g = figure3_graph();
        let n = 10;
        let mut p = original_program(&g, n);
        p.body.as_mut().unwrap().hi += 1; // one extra iteration
        let err = ExpectedCounts::original(&g, n)
            .check_static(&p)
            .unwrap_err();
        assert!(err.contains("trip_count"), "{err}");
    }

    #[test]
    fn check_dynamic_reports_deviations() {
        let g = figure3_graph();
        let c = ExpectedCounts::original(&g, 10);
        assert!(c.check_dynamic(50, 0).is_ok());
        assert!(c.check_dynamic(49, 0).unwrap_err().contains("executed"));
        assert!(c.check_dynamic(50, 1).unwrap_err().contains("nullified"));
    }
}
