//! Partial code collapsing — the ad-hoc baseline the paper improves on.
//!
//! Its reference \[4\] (Granston et al., the TMS320C6000 production flow)
//! collapses only *part* of the expansion: e.g. keep the prologue as
//! straight-line code and let predication absorb the epilogue, or vice
//! versa. These generators implement both halves so the benefit of total
//! reduction (Theorem 4.3) can be quantified against them:
//!
//! | form | code size |
//! |---|---|
//! | full pipelined | `L + sum r + sum (M - r)` |
//! | [`collapse_epilogue`] | `L + sum r + 2 P` |
//! | [`collapse_prologue`] | `L + sum (M - r) + 2 P` |
//! | full CRED | `L + 2 P` |
//!
//! Tail masking uses per-register *bounds*: stage `rho`'s register is
//! `setup p = 0 : -(n - rho)` and counts down, so its instructions turn
//! off exactly after original iteration `n - rho` — the window test the
//! paper's `-LC` comparison hardware performs, with a per-register `LC`.

use crate::cred::assign_registers as registers_by_value;
use crate::ir::{Guard, Index, Inst, LoopProgram, LoopSpec};
use crate::pipeline::{array_names, instance};
use cred_dfg::{algo, Dfg};
use cred_retime::Retiming;

/// Keep the prologue straight-line; run the kernel for all `n` base
/// iterations with guards masking only the epilogue overrun.
/// Code size `L + sum_v r(v) + 2 P`.
///
/// # Panics
/// Panics when `n < M_r`: a straight-line half requires the pipeline to
/// fill completely (use full CRED for shorter trip counts).
pub fn collapse_epilogue(g: &Dfg, r: &Retiming, n: u64) -> LoopProgram {
    assert!(r.is_normalized() && r.is_legal(g));
    assert!(
        n as i64 >= r.max_value(),
        "collapse_epilogue requires n >= M_r"
    );
    let gr = r.apply(g);
    let order = algo::zero_delay_topo_order(&gr).expect("well-formed");
    let n_i = n as i64;
    let m = r.max_value();
    let regs = registers_by_value(r);

    let mut pre = Vec::new();
    // Straight-line prologue (as in the plain pipelined form).
    for s in (1 - m)..=0 {
        for &v in &order {
            let idx = s + r.get(v);
            if (1..=n_i).contains(&idx) {
                pre.push(instance(g, v, Index::Const(idx), None));
            }
        }
    }
    // Tail-masking registers: value 0, per-register bound -(n - rho).
    for (&rho, &reg) in regs.iter().rev() {
        pre.push(Inst::Setup {
            reg,
            init: 0,
            bound: -(n_i - rho),
        });
    }
    let mut body: Vec<Inst> = order
        .iter()
        .map(|&v| {
            let rho = r.get(v);
            instance(
                g,
                v,
                Index::i_plus(rho),
                Some(Guard {
                    reg: regs[&rho],
                    offset: 0,
                }),
            )
        })
        .collect();
    for &reg in regs.values() {
        body.push(Inst::Dec { reg, by: 1 });
    }
    LoopProgram {
        name: "collapse-epilogue".into(),
        n,
        arrays: array_names(g),
        pre,
        body: Some(LoopSpec {
            lo: 1,
            hi: n_i,
            step: 1,
            body,
            auto_dec: None,
        }),
        post: Vec::new(),
    }
}

/// Guard away the prologue (head masking, as in full CRED) but emit the
/// epilogue straight-line. Code size `L + sum_v (M_r - r(v)) + 2 P`.
///
/// # Panics
/// Panics when `n < M_r` (see [`collapse_epilogue`]).
pub fn collapse_prologue(g: &Dfg, r: &Retiming, n: u64) -> LoopProgram {
    assert!(r.is_normalized() && r.is_legal(g));
    assert!(
        n as i64 >= r.max_value(),
        "collapse_prologue requires n >= M_r"
    );
    let gr = r.apply(g);
    let order = algo::zero_delay_topo_order(&gr).expect("well-formed");
    let n_i = n as i64;
    let m = r.max_value();
    let regs = registers_by_value(r);

    // Head-masking registers: the full-CRED window init, but the loop
    // stops at i = n - M (the straight-line epilogue takes over), so only
    // the head of the window is ever exercised.
    let pre: Vec<Inst> = regs
        .iter()
        .rev()
        .map(|(&rho, &reg)| Inst::Setup {
            reg,
            init: m - rho,
            bound: -n_i,
        })
        .collect();
    let mut body: Vec<Inst> = order
        .iter()
        .map(|&v| {
            let rho = r.get(v);
            instance(
                g,
                v,
                Index::i_plus(rho),
                Some(Guard {
                    reg: regs[&rho],
                    offset: 0,
                }),
            )
        })
        .collect();
    for &reg in regs.values() {
        body.push(Inst::Dec { reg, by: 1 });
    }
    let mut post = Vec::new();
    for s in (n_i - m + 1).max(1)..=n_i {
        for &v in &order {
            let idx = s + r.get(v);
            if (1..=n_i).contains(&idx) {
                post.push(instance(g, v, Index::NPlus(idx - n_i), None));
            }
        }
    }
    LoopProgram {
        name: "collapse-prologue".into(),
        n,
        arrays: array_names(g),
        pre,
        body: Some(LoopSpec {
            lo: 1 - m,
            hi: n_i - m,
            step: 1,
            body,
            auto_dec: None,
        }),
        post,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::cred_pipelined;
    use crate::pipeline::pipelined_program;
    use cred_dfg::{DfgBuilder, OpKind};

    fn figure3() -> (Dfg, Retiming) {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(9));
        let bb = b.node("B", 1, OpKind::Mul(5));
        let c = b.node("C", 1, OpKind::Add(0));
        let d = b.node("D", 1, OpKind::Mul(0));
        let e = b.node("E", 1, OpKind::Add(30));
        b.edge(e, a, 4);
        b.edge(a, bb, 0);
        b.edge(a, c, 0);
        b.edge(bb, c, 2);
        b.edge(a, d, 0);
        b.edge(c, d, 0);
        b.edge(d, e, 0);
        (
            b.build().unwrap(),
            Retiming::from_values(vec![3, 2, 2, 1, 0]),
        )
    }

    #[test]
    fn collapse_accounting_and_the_papers_point() {
        let (g, r) = figure3();
        let n = 20u64;
        let pip = pipelined_program(&g, &r, n).code_size();
        let full = cred_pipelined(&g, &r, n).code_size();
        let epi = collapse_epilogue(&g, &r, n).code_size();
        let pro = collapse_prologue(&g, &r, n).code_size();
        // Exact accounting: L + sum r + 2P and L + sum (M - r) + 2P.
        assert_eq!(epi, 5 + 8 + 8);
        assert_eq!(pro, 5 + 7 + 8);
        // Full CRED always dominates either half measure (Theorem 4.3's
        // "quality guaranteed" claim)...
        assert!(full < epi && full < pro);
        // ...while a half measure may even LOSE to plain pipelining when
        // the removed half is smaller than the register overhead — here
        // the epilogue (7 instructions) costs 2P = 8 to mask, exactly the
        // paper's complaint that the ad-hoc techniques of \[4\] "could not
        // be guaranteed".
        assert_eq!(pip, 20);
        assert!(epi > pip, "epilogue collapse is counterproductive here");
        assert!(pro == pip, "prologue collapse only breaks even here");
    }

    #[test]
    fn partial_collapses_are_correct_programs() {
        // VM-checked in the integration battery; sanity-check counts here.
        let (g, r) = figure3();
        let epi = collapse_epilogue(&g, &r, 20);
        let pro = collapse_prologue(&g, &r, 20);
        assert_eq!(epi.register_count(), 4);
        assert_eq!(pro.register_count(), 4);
        assert_eq!(epi.body.as_ref().unwrap().trip_count(), 20);
        assert_eq!(pro.body.as_ref().unwrap().trip_count(), 20);
    }
}
