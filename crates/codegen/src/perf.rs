//! A static cycle model on top of the VLIW bundler: estimated execution
//! cycles = words(pre) + trips * words(body) + words(post) (single-cycle
//! fetch packets, perfect memory). Used to check the paper's "without
//! jeopardizing the performance" claim with end-to-end numbers rather
//! than free-slot counting alone.

use crate::bundle::{bundle, BundleMachine, BundleStats};
use crate::ir::LoopProgram;

/// Cycle estimate for one program on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleEstimate {
    /// Static word counts per region.
    pub words: BundleStats,
    /// Loop trip count.
    pub trips: u64,
    /// Total estimated cycles.
    pub cycles: u64,
}

/// Estimate execution cycles of `p` on machine `m`.
pub fn estimate_cycles(p: &LoopProgram, m: BundleMachine) -> CycleEstimate {
    let words = bundle(p, m);
    let trips = p.body.as_ref().map_or(0, |l| l.trip_count());
    CycleEstimate {
        words,
        trips,
        cycles: words.pre_words as u64 + trips * words.body_words as u64 + words.post_words as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::{cred_pipelined, cred_rotating};
    use crate::pipeline::{original_program, pipelined_program};
    use cred_dfg::{DfgBuilder, OpKind};
    use cred_retime::Retiming;

    fn figure3() -> (cred_dfg::Dfg, Retiming) {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(9));
        let bb = b.node("B", 1, OpKind::Mul(5));
        let c = b.node("C", 1, OpKind::Add(0));
        let d = b.node("D", 1, OpKind::Mul(0));
        let e = b.node("E", 1, OpKind::Add(30));
        b.edge(e, a, 4);
        b.edge(a, bb, 0);
        b.edge(a, c, 0);
        b.edge(bb, c, 2);
        b.edge(a, d, 0);
        b.edge(c, d, 0);
        b.edge(d, e, 0);
        (
            b.build().unwrap(),
            Retiming::from_values(vec![3, 2, 2, 1, 0]),
        )
    }

    #[test]
    fn pipelining_speeds_up_the_loop() {
        // Original: 4 words/iteration; pipelined: 1 word/iteration.
        let (g, r) = figure3();
        let n = 1000u64;
        let m = BundleMachine::c6x();
        let orig = estimate_cycles(&original_program(&g, n), m);
        let pip = estimate_cycles(&pipelined_program(&g, &r, n), m);
        assert!(pip.cycles * 3 < orig.cycles, "~4x speedup expected");
    }

    #[test]
    fn cred_performance_close_to_pipelined() {
        // The paper's claim: CRED costs little performance. Here the CRED
        // kernel needs one extra word for the decrements (the ALU slots
        // are nearly full) and runs M_r extra iterations.
        let (g, r) = figure3();
        let n = 1000u64;
        let m = BundleMachine::c6x();
        let pip = estimate_cycles(&pipelined_program(&g, &r, n), m);
        let cred = estimate_cycles(&cred_pipelined(&g, &r, n), m);
        // Within 2.1x here (1 -> 2 words per iteration on this tiny
        // kernel); on real kernels with slack the gap vanishes — see the
        // rotating variant below and the perf_model experiment.
        assert!(cred.cycles <= pip.cycles * 21 / 10);
    }

    #[test]
    fn rotating_cred_matches_pipelined_performance() {
        // With hardware auto-decrement there are no decrement
        // instructions: the kernel word count equals the pipelined one,
        // so the only cost is M_r extra (guarded) iterations.
        let (g, r) = figure3();
        let n = 1000u64;
        let m = BundleMachine::c6x();
        let pip = estimate_cycles(&pipelined_program(&g, &r, n), m);
        let rot = estimate_cycles(&cred_rotating(&g, &r, 1, n), m);
        assert_eq!(rot.words.body_words, 1);
        // n+M iterations at 1 word vs prologue+kernel+epilogue words.
        assert!(rot.cycles <= pip.cycles + 3);
    }

    #[test]
    fn estimate_is_linear_in_trip_count() {
        let (g, r) = figure3();
        let m = BundleMachine::c6x();
        let c1 = estimate_cycles(&cred_pipelined(&g, &r, 100), m);
        let c2 = estimate_cycles(&cred_pipelined(&g, &r, 200), m);
        assert_eq!(c2.cycles - c1.cycles, 100 * c1.words.body_words as u64);
    }
}
