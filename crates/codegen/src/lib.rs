//! # cred-codegen — loop code generation and the CRED transformation
//!
//! Generates executable loop programs (see `cred-vm`) from DFGs in every
//! form the paper compares, and implements the paper's contribution: the
//! conditional-register code-size reduction (CRED).
//!
//! ## The instance principle
//!
//! Every compute instruction emitted by any generator is an *instance*
//! "node `v` of the original graph at original iteration `I`", where `I` is
//! affine in the loop induction variable. Its sources are, for each DFG
//! edge `e(u -> v)` with original delay `d`, the value of `u` at iteration
//! `I - d`. Correctness of each strategy then reduces to: every
//! `(v, I)` with `1 <= I <= n` executes exactly once, in an order
//! compatible with the zero-delay dependencies — which `cred-vm` checks
//! mechanically against the DFG recurrence.
//!
//! ## Generators
//!
//! | function | paper artifact | code size |
//! |---|---|---|
//! | [`pipeline::original_program`] | Figure 4-style plain loop | `L` |
//! | [`pipeline::pipelined_program`] | Figure 3(a) prologue/kernel/epilogue | `L + |V| * M_r` |
//! | [`cred::cred_pipelined`] | Figure 3(b) | `L + 2 P_r` |
//! | [`unfolded::unfolded_program`] | Figure 5(a) | `f L + (n mod f) L` |
//! | [`cred::cred_unfolded`] | Figure 5(b) | `f L + 2` |
//! | [`unfolded::retime_unfold_program`] | §3.4 baseline | `(M_r + f) L + Q_f` |
//! | [`cred::cred_retime_unfold`] | Figure 7(b) | `f L + P_r (f+1)` or `f L + 2 P_r` |
//! | [`unfolded::unfold_retime_program`] | Theorem 4.4 baseline | `(M_{f,r}+1) f L + Q_f` |
//!
//! Two [`cred::DecMode`]s reproduce the two overhead accountings present in
//! the paper's own tables (per-copy decrements in Table 2; bulk
//! decrement-by-`f` in Tables 3–4).
//!
//! [`bundle`] additionally packs any generated program into VLIW fetch
//! packets and measures code size in *words*, the C6x-style metric.

pub mod bundle;
pub mod collapse;
pub mod counts;
pub mod cred;
pub mod ir;
pub mod perf;
pub mod pipeline;
pub mod pretty;
pub mod size;
pub mod unfolded;

pub use counts::ExpectedCounts;
pub use cred::DecMode;
pub use ir::{Guard, Index, Inst, LoopProgram, LoopSpec, PredId, Ref};
