//! The CRED transformation: code-size reduction with conditional registers.
//!
//! One conditional register per distinct retiming value (Theorem 4.3); the
//! guarded kernel subsumes prologue, epilogue, and remainder iterations
//! (Theorems 4.1, 4.2, 4.6, 4.7). The register guarding retiming value
//! `rho` is initialized to `M_r + Q_head - rho` with hardware bound `-n`
//! and is decremented so that, at original-iteration slot `s`, its
//! effective value is `1 - rho - s`: the guarded instance `v[s + r(v)]`
//! executes exactly when `1 <= s + r(v) <= n`.

use crate::ir::{Guard, Index, Inst, LoopProgram, LoopSpec, PredId};
use crate::pipeline::{array_names, instance};
use cred_dfg::{algo, Dfg};
use cred_retime::Retiming;
use cred_unfold::Unfolded;
use std::collections::BTreeMap;

/// Where the conditional-register decrements are placed in an unfolded
/// body. Both modes appear in the paper's own accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecMode {
    /// Decrement every register by 1 after each of the `f` body copies
    /// (Figure 7(a)); guards need no static offset. Overhead per program:
    /// `P` setups + `f * P` decrements (Table 2's accounting).
    PerCopy,
    /// Decrement every register by `f` once per iteration; the guard of
    /// copy `j` carries the static offset `j`, compared by hardware
    /// (Tables 3–4's accounting). Overhead: `P` setups + `P` decrements.
    Bulk,
}

/// Assign conditional registers to distinct retiming values, largest value
/// first (the paper's `p1` guards the most-retimed node A in Figure 3(b)).
pub(crate) fn assign_registers(r: &Retiming) -> BTreeMap<i64, PredId> {
    let mut distinct: Vec<i64> = r.distinct_values().into_iter().collect();
    distinct.reverse();
    distinct
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, PredId(i as u32)))
        .collect()
}

/// CRED for a retimed-then-unfolded loop (the general case; `f = 1` is the
/// plain software-pipelined loop of Figure 3(b)).
///
/// The loop body is the unfolded kernel only — no prologue, epilogue, or
/// remainder code exists. The loop runs `ceil((n + M_r + Q_head)/f)` times
/// starting at slot `1 - M_r - Q_head`, where
/// `Q_head = (f - M_r mod f) mod f` pads the pipeline fill to a whole
/// unfolded iteration (Theorem 4.6); guards disable the pad and the
/// trailing overrun.
///
/// Code size: `f*L + P*(f+1)` ([`DecMode::PerCopy`]) or `f*L + 2*P`
/// ([`DecMode::Bulk`]), with `P = |N_r|` registers — identical to the
/// register count of the un-unfolded retimed loop (Theorem 4.7).
pub fn cred_retime_unfold(g: &Dfg, r: &Retiming, f: usize, n: u64, mode: DecMode) -> LoopProgram {
    // No error channel here: an injected `Error` escalates to a panic,
    // which the resilient sweep isolates per point.
    cred_resilience::failpoint::hit_infallible(cred_resilience::failpoint::sites::CODEGEN_CRED);
    assert!(f >= 1);
    assert!(r.is_normalized(), "retiming must be normalized");
    assert!(r.is_legal(g), "retiming must be legal");
    let gr = r.apply(g);
    let order = algo::zero_delay_topo_order(&gr).expect("retimed graph well-formed");
    let m = r.max_value();
    let n_i = n as i64;
    let f_i = f as i64;
    let qhead = (f_i - m.rem_euclid(f_i)) % f_i;
    let regs = assign_registers(r);

    let pre: Vec<Inst> = regs
        .iter()
        .rev() // emit p1 (largest value) first, like the paper
        .map(|(&rho, &reg)| Inst::Setup {
            reg,
            init: m + qhead - rho,
            bound: -n_i,
        })
        .collect();

    let mut body = Vec::with_capacity(f * order.len() + regs.len() * f);
    for j in 0..f_i {
        for &v in &order {
            let rho = r.get(v);
            body.push(instance(
                g,
                v,
                Index::i_plus(j + rho),
                Some(Guard {
                    reg: regs[&rho],
                    offset: if mode == DecMode::Bulk { j } else { 0 },
                }),
            ));
        }
        if mode == DecMode::PerCopy {
            for &reg in regs.values() {
                body.push(Inst::Dec { reg, by: 1 });
            }
        }
    }
    if mode == DecMode::Bulk {
        for &reg in regs.values() {
            body.push(Inst::Dec { reg, by: f_i });
        }
    }

    let lo = 1 - m - qhead;
    let total_slots = n_i + m + qhead;
    let iters = (total_slots + f_i - 1) / f_i;
    let hi = lo + f_i * (iters - 1);
    LoopProgram {
        name: if f == 1 {
            "cred".into()
        } else {
            "cred-retime-unfold".into()
        },
        n,
        arrays: array_names(g),
        pre,
        body: Some(LoopSpec {
            lo,
            hi,
            step: f_i,
            body,
            auto_dec: None,
        }),
        post: Vec::new(),
    }
}

/// CRED for a software-pipelined (retimed, not unfolded) loop —
/// Figure 3(b). Code size `L + 2 * P_r`; the loop runs `n + M_r` times.
pub fn cred_pipelined(g: &Dfg, r: &Retiming, n: u64) -> LoopProgram {
    cred_retime_unfold(g, r, 1, n, DecMode::Bulk)
}

/// CRED on an IA-64-style machine with *rotating* stage predicates: the
/// loop branch decrements every conditional register automatically
/// (`br.ctop`-like), so the body carries **no decrement instructions**.
/// Code size `f*L + P_r` — below the paper's TI-style optimum
/// `f*L + 2*P_r` (the paper cites IA-64 as an alternative conditional-
/// register implementation; this generator quantifies the difference).
pub fn cred_rotating(g: &Dfg, r: &Retiming, f: usize, n: u64) -> LoopProgram {
    let mut p = cred_retime_unfold(g, r, f, n, DecMode::Bulk);
    let body = p.body.as_mut().expect("CRED programs have a loop");
    body.body.retain(|i| !matches!(i, Inst::Dec { .. }));
    body.auto_dec = Some(f as i64);
    p.name = "cred-rotating".into();
    p
}

/// CRED for a plain unfolded loop — Figure 5(b), the zero-retiming case.
/// One conditional register removes all `(n mod f) * L` remainder
/// instructions; code size `f*L + 2` in [`DecMode::Bulk`].
pub fn cred_unfolded(g: &Dfg, f: usize, n: u64, mode: DecMode) -> LoopProgram {
    let mut p = cred_retime_unfold(g, &Retiming::zero(g.node_count()), f, n, mode);
    p.name = "cred-unfolded".into();
    p
}

/// CRED for an unfolded-then-retimed loop: the guarded kernel of the
/// pipelined unfolded loop replaces its prologue and epilogue; the
/// `n mod f` remainder iterations stay as straight-line code (the paper
/// notes this order may need more registers — one per distinct value over
/// `V_f` — and never tabulates a CR variant for it; removing the remainder
/// too would need per-copy cutoffs, i.e. up to `f * P` registers).
///
/// Code size: `f*L + 2*P_f + (n mod f)*L`.
pub fn cred_unfold_retime(g: &Dfg, u: &Unfolded, r_f: &Retiming, n: u64) -> LoopProgram {
    let f = u.factor;
    assert!(r_f.is_normalized() && r_f.is_legal(&u.graph));
    let gfr = r_f.apply(&u.graph);
    let order = algo::zero_delay_topo_order(&gfr).expect("retimed G_f well-formed");
    let n_i = n as i64;
    let f_i = f as i64;
    let big_n = n_i / f_i;
    let m = r_f.max_value();
    let regs = assign_registers(r_f);

    let pre: Vec<Inst> = regs
        .iter()
        .rev()
        .map(|(&rho, &reg)| Inst::Setup {
            reg,
            init: m - rho,
            bound: -big_n,
        })
        .collect();

    let mut body = Vec::with_capacity(order.len() + regs.len());
    for &w in &order {
        let rho = r_f.get(w);
        let (orig, j) = u.origin(w);
        body.push(instance(
            g,
            orig,
            Index::Loop {
                scale: f_i,
                offset: f_i * (rho - 1) + j as i64 + 1,
            },
            Some(Guard {
                reg: regs[&rho],
                offset: 0,
            }),
        ));
    }
    for &reg in regs.values() {
        body.push(Inst::Dec { reg, by: 1 });
    }

    // Remainder original iterations stay straight-line.
    let mut post = Vec::new();
    let orig_order = algo::zero_delay_topo_order(g).expect("well-formed");
    for it in (f_i * big_n + 1)..=n_i {
        for &v in &orig_order {
            post.push(instance(g, v, Index::NPlus(it - n_i), None));
        }
    }
    LoopProgram {
        name: "cred-unfold-retime".into(),
        n,
        arrays: array_names(g),
        pre,
        body: Some(LoopSpec {
            lo: 1 - m,
            hi: big_n,
            step: 1,
            body,
            auto_dec: None,
        }),
        post,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::{DfgBuilder, OpKind};

    fn figure3_graph() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(9));
        let bb = b.node("B", 1, OpKind::Mul(5));
        let c = b.node("C", 1, OpKind::Add(0));
        let d = b.node("D", 1, OpKind::Mul(0));
        let e = b.node("E", 1, OpKind::Add(30));
        b.edge(e, a, 4);
        b.edge(a, bb, 0);
        b.edge(a, c, 0);
        b.edge(bb, c, 2);
        b.edge(a, d, 0);
        b.edge(c, d, 0);
        b.edge(d, e, 0);
        b.build().unwrap()
    }

    #[test]
    fn figure3b_structure() {
        let g = figure3_graph();
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        let n = 100u64;
        let p = cred_pipelined(&g, &r, n);
        // 4 distinct values {0,1,2,3} -> 4 registers, size L + 2P = 13.
        assert_eq!(p.register_count(), 4);
        assert_eq!(p.code_size(), 5 + 8);
        // Loop from i = -2 to n: n + 3 iterations.
        let l = p.body.as_ref().unwrap();
        assert_eq!(l.lo, -2);
        assert_eq!(l.hi, 100);
        assert_eq!(l.trip_count(), n + 3);
        assert!(p.post.is_empty());
    }

    #[test]
    fn figure3b_setup_values() {
        // p1..p4 initialized to 0, 1, 2, 3 with bound -n.
        let g = figure3_graph();
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        let p = cred_pipelined(&g, &r, 100);
        let setups: Vec<(u32, i64, i64)> = p
            .pre
            .iter()
            .map(|i| match i {
                Inst::Setup { reg, init, bound } => (reg.0, *init, *bound),
                _ => panic!("pre must be setups"),
            })
            .collect();
        assert_eq!(
            setups,
            vec![(0, 0, -100), (1, 1, -100), (2, 2, -100), (3, 3, -100)]
        );
    }

    #[test]
    fn cred_size_formula_per_mode() {
        let g = figure3_graph();
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        let l = 5usize;
        let p_regs = 4usize;
        for f in 1..=4usize {
            let per = cred_retime_unfold(&g, &r, f, 101, DecMode::PerCopy);
            assert_eq!(per.code_size(), f * l + p_regs * (f + 1), "PerCopy f={f}");
            let bulk = cred_retime_unfold(&g, &r, f, 101, DecMode::Bulk);
            assert_eq!(bulk.code_size(), f * l + 2 * p_regs, "Bulk f={f}");
            assert_eq!(per.register_count(), p_regs);
            assert_eq!(bulk.register_count(), p_regs);
        }
    }

    #[test]
    fn cred_unfolded_single_register() {
        let g = figure3_graph();
        for f in 2..=4usize {
            let p = cred_unfolded(&g, f, 101, DecMode::Bulk);
            assert_eq!(p.register_count(), 1);
            assert_eq!(p.code_size(), f * 5 + 2);
        }
    }

    #[test]
    fn qhead_alignment() {
        // M = 3, f = 2: Q_head = 1; loop starts at slot 1 - 3 - 1 = -3 and
        // runs ceil((n + 4)/2) iterations.
        let g = figure3_graph();
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        let p = cred_retime_unfold(&g, &r, 2, 10, DecMode::Bulk);
        let l = p.body.as_ref().unwrap();
        assert_eq!(l.lo, -3);
        assert_eq!(l.trip_count(), 7); // (10 + 3 + 1) / 2
        assert_eq!(l.step, 2);
    }

    #[test]
    fn qhead_zero_when_divisible() {
        let g = figure3_graph();
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        let p = cred_retime_unfold(&g, &r, 3, 9, DecMode::Bulk);
        let l = p.body.as_ref().unwrap();
        assert_eq!(l.lo, -2); // 1 - M, no padding
        assert_eq!(l.trip_count(), 4); // (9 + 3)/3
    }

    #[test]
    fn bulk_guards_carry_copy_offsets() {
        let g = figure3_graph();
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        let p = cred_retime_unfold(&g, &r, 3, 30, DecMode::Bulk);
        let body = &p.body.as_ref().unwrap().body;
        let mut offsets: Vec<i64> = body
            .iter()
            .filter_map(|i| match i {
                Inst::Compute {
                    guard: Some(gd), ..
                } => Some(gd.offset),
                _ => None,
            })
            .collect();
        offsets.dedup();
        assert_eq!(offsets, vec![0, 1, 2]);
    }

    #[test]
    fn percopy_guards_have_no_offsets() {
        let g = figure3_graph();
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        let p = cred_retime_unfold(&g, &r, 3, 30, DecMode::PerCopy);
        let body = &p.body.as_ref().unwrap().body;
        assert!(body.iter().all(|i| match i {
            Inst::Compute {
                guard: Some(gd), ..
            } => gd.offset == 0,
            Inst::Compute { guard: None, .. } => false,
            _ => true,
        }));
        // f decrement groups of P registers each.
        let decs = body
            .iter()
            .filter(|i| matches!(i, Inst::Dec { .. }))
            .count();
        assert_eq!(decs, 3 * 4);
    }

    #[test]
    fn rotating_mode_size_and_structure() {
        let g = figure3_graph();
        let r = Retiming::from_values(vec![3, 2, 2, 1, 0]);
        for f in 1..=3usize {
            let p = cred_rotating(&g, &r, f, 50);
            // f*L computes + P setups, zero decrements.
            assert_eq!(p.code_size(), f * 5 + 4, "f={f}");
            let body = p.body.as_ref().unwrap();
            assert!(body.body.iter().all(|i| !matches!(i, Inst::Dec { .. })));
            assert_eq!(body.auto_dec, Some(f as i64));
        }
    }

    #[test]
    fn cred_unfold_retime_size() {
        use cred_unfold::unfold;
        let g = figure3_graph();
        let f = 3usize;
        let n = 101u64;
        let u = unfold(&g, f);
        let opt = cred_retime::min_period_retiming(&u.graph);
        let p = cred_unfold_retime(&g, &u, &opt.retiming, n);
        let pf = opt.retiming.register_count();
        assert_eq!(p.code_size(), f * 5 + 2 * pf + ((n as usize) % f) * 5);
    }
}
