//! The loop intermediate representation.
//!
//! A [`LoopProgram`] is straight-line setup/prologue code, at most one
//! counted loop, and straight-line epilogue/remainder code. Instructions
//! are either guarded array computations ([`Inst::Compute`]) or the
//! conditional-register bookkeeping the CRED transformation inserts
//! ([`Inst::Setup`], [`Inst::Dec`]).
//!
//! Arrays are value streams: array `a` holds the values of original DFG
//! node `a`, indexed by original iteration `1..=n`. Reads at indices
//! `<= 0` yield the initial value `0` (the paper's `E[-3]` etc.); reads
//! beyond `n` and double or out-of-range writes are *errors* diagnosed by
//! the VM.

use cred_dfg::OpKind;
use std::fmt;

/// A conditional (predicate) register id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

/// An iteration index expression, affine in the loop induction variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Index {
    /// A compile-time constant iteration.
    Const(i64),
    /// `n + k` — relative to the original trip count.
    NPlus(i64),
    /// `scale * i + offset` for loop induction variable `i`.
    Loop {
        /// Multiplier on the induction variable (`f` for programs whose
        /// loop advances by one *unfolded* iteration per step).
        scale: i64,
        /// Constant displacement added after scaling (encodes the copy
        /// index and retiming shift of the instance).
        offset: i64,
    },
}

impl Index {
    /// Shorthand for `i + k`.
    pub fn i_plus(k: i64) -> Index {
        Index::Loop {
            scale: 1,
            offset: k,
        }
    }

    /// Evaluate with loop variable `i` (ignored for non-loop forms) and
    /// trip count `n`.
    pub fn eval(self, i: i64, n: i64) -> i64 {
        match self {
            Index::Const(k) => k,
            Index::NPlus(k) => n + k,
            Index::Loop { scale, offset } => scale * i + offset,
        }
    }

    /// True if this index depends on the loop variable.
    pub fn is_loop_relative(self) -> bool {
        matches!(self, Index::Loop { .. })
    }
}

/// An array element reference `array[index]`. Array ids coincide with the
/// original DFG's node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ref {
    /// Which value stream (original DFG node index).
    pub array: u32,
    /// Which iteration of it.
    pub index: Index,
}

/// A guard `(p)` on an instruction: the instruction executes iff
/// `bound < value(p) - offset <= 0`, where `bound` is fixed at `setup`
/// time. `offset` models the hardware comparing the register against a
/// statically known copy displacement (bulk-decrement mode); it is `0` in
/// per-copy mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guard {
    /// The conditional register tested.
    pub reg: PredId,
    /// Static displacement subtracted from the register value before the
    /// window test.
    pub offset: i64,
}

/// One instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `(guard)? dest = op(srcs)` — a compute instance.
    Compute {
        /// Optional conditional-register guard.
        guard: Option<Guard>,
        /// Destination element.
        dest: Ref,
        /// Operation (the original node's op).
        op: OpKind,
        /// Source elements, in DFG in-edge order.
        srcs: Vec<Ref>,
    },
    /// `setup p = init : bound` — initialize a conditional register and its
    /// hardware lower bound (the paper's proposed instruction, §3.2).
    Setup {
        /// Register being initialized.
        reg: PredId,
        /// Initial value.
        init: i64,
        /// Window lower bound (exclusive); the paper writes `-LC`.
        bound: i64,
    },
    /// `p = p - by` — explicit decrement.
    Dec {
        /// Register decremented.
        reg: PredId,
        /// Decrement amount (1 in per-copy mode, `f` in bulk mode).
        by: i64,
    },
}

impl Inst {
    /// Convenience constructor for an unguarded compute.
    pub fn compute(dest: Ref, op: OpKind, srcs: Vec<Ref>) -> Inst {
        Inst::Compute {
            guard: None,
            dest,
            op,
            srcs,
        }
    }
}

/// The counted loop of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSpec {
    /// First value of the induction variable.
    pub lo: i64,
    /// Last admissible value (inclusive); the loop runs while `i <= hi`.
    pub hi: i64,
    /// Induction step (`1`, or `f` for unfolded loops).
    pub step: i64,
    /// Loop body.
    pub body: Vec<Inst>,
    /// Hardware auto-decrement: `Some(k)` models IA-64-style rotating
    /// stage predicates — every conditional register decreases by `k` at
    /// the end of each iteration with **no explicit decrement
    /// instructions** in the body (the rotation is performed by the loop
    /// branch, like `br.ctop`). `None` is the TI-style explicit-decrement
    /// machine the paper assumes.
    pub auto_dec: Option<i64>,
}

impl LoopSpec {
    /// Number of iterations the loop executes.
    pub fn trip_count(&self) -> u64 {
        if self.hi < self.lo {
            0
        } else {
            ((self.hi - self.lo) / self.step + 1) as u64
        }
    }
}

/// A complete loop program over the value streams of one original DFG.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopProgram {
    /// Human-readable generator tag (`"pipelined"`, `"cred"`, ...).
    pub name: String,
    /// The original trip count `n` the program was generated for.
    pub n: u64,
    /// Array names (original DFG node names), indexed by array id.
    pub arrays: Vec<String>,
    /// Straight-line code before the loop (CRED setups, prologue).
    pub pre: Vec<Inst>,
    /// The loop, if any.
    pub body: Option<LoopSpec>,
    /// Straight-line code after the loop (epilogue, remainder iterations).
    pub post: Vec<Inst>,
}

impl LoopProgram {
    /// The paper's code-size metric: total instruction count — prologue +
    /// loop body (counted once) + epilogue, including `setup`/decrement
    /// instructions. Loop-control overhead is not counted (the paper counts
    /// "the number of nodes in a schedule").
    pub fn code_size(&self) -> usize {
        self.pre.len() + self.body.as_ref().map_or(0, |l| l.body.len()) + self.post.len()
    }

    /// Number of compute instructions (excludes setup/dec overhead).
    pub fn compute_count(&self) -> usize {
        let count = |insts: &[Inst]| {
            insts
                .iter()
                .filter(|i| matches!(i, Inst::Compute { .. }))
                .count()
        };
        count(&self.pre) + self.body.as_ref().map_or(0, |l| count(&l.body)) + count(&self.post)
    }

    /// Number of distinct conditional registers referenced.
    pub fn register_count(&self) -> usize {
        let mut regs = std::collections::BTreeSet::new();
        let mut scan = |insts: &[Inst]| {
            for inst in insts {
                match inst {
                    Inst::Setup { reg, .. } | Inst::Dec { reg, .. } => {
                        regs.insert(*reg);
                    }
                    Inst::Compute { guard: Some(g), .. } => {
                        regs.insert(g.reg);
                    }
                    Inst::Compute { guard: None, .. } => {}
                }
            }
        };
        scan(&self.pre);
        if let Some(l) = &self.body {
            scan(&l.body);
        }
        scan(&self.post);
        regs.len()
    }

    /// Total dynamic instruction *instances* (pre + trip_count * body +
    /// post) — a proxy for execution cost used by performance sanity
    /// checks.
    pub fn dynamic_size(&self) -> u64 {
        let body = self
            .body
            .as_ref()
            .map_or(0, |l| l.trip_count() * l.body.len() as u64);
        self.pre.len() as u64 + body + self.post.len() as u64
    }
}

impl fmt::Display for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Index::Const(k) => write!(f, "{k}"),
            Index::NPlus(0) => write!(f, "n"),
            Index::NPlus(k) if k > 0 => write!(f, "n+{k}"),
            Index::NPlus(k) => write!(f, "n{k}"),
            Index::Loop {
                scale: 1,
                offset: 0,
            } => write!(f, "i"),
            Index::Loop { scale: 1, offset } if offset > 0 => write!(f, "i+{offset}"),
            Index::Loop { scale: 1, offset } => write!(f, "i{offset}"),
            Index::Loop { scale, offset: 0 } => write!(f, "{scale}i"),
            Index::Loop { scale, offset } if offset > 0 => write!(f, "{scale}i+{offset}"),
            Index::Loop { scale, offset } => write!(f, "{scale}i{offset}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_eval() {
        assert_eq!(Index::Const(5).eval(99, 7), 5);
        assert_eq!(Index::NPlus(-2).eval(99, 7), 5);
        assert_eq!(Index::i_plus(3).eval(4, 7), 7);
        assert_eq!(
            Index::Loop {
                scale: 3,
                offset: 1
            }
            .eval(4, 7),
            13
        );
    }

    #[test]
    fn index_display() {
        assert_eq!(Index::Const(3).to_string(), "3");
        assert_eq!(Index::NPlus(0).to_string(), "n");
        assert_eq!(Index::NPlus(2).to_string(), "n+2");
        assert_eq!(Index::NPlus(-1).to_string(), "n-1");
        assert_eq!(Index::i_plus(0).to_string(), "i");
        assert_eq!(Index::i_plus(4).to_string(), "i+4");
        assert_eq!(Index::i_plus(-2).to_string(), "i-2");
        assert_eq!(
            Index::Loop {
                scale: 3,
                offset: 2
            }
            .to_string(),
            "3i+2"
        );
    }

    #[test]
    fn loop_trip_count() {
        let mk = |lo, hi, step| LoopSpec {
            lo,
            hi,
            step,
            body: vec![],
            auto_dec: None,
        };
        assert_eq!(mk(1, 10, 1).trip_count(), 10);
        assert_eq!(mk(1, 10, 3).trip_count(), 4); // 1,4,7,10
        assert_eq!(mk(1, 9, 3).trip_count(), 3); // 1,4,7
        assert_eq!(mk(5, 4, 1).trip_count(), 0);
        assert_eq!(mk(-2, 0, 1).trip_count(), 3);
    }

    #[test]
    fn code_size_counts_everything_once() {
        let c = Inst::compute(
            Ref {
                array: 0,
                index: Index::Const(1),
            },
            OpKind::Add(0),
            vec![],
        );
        let p = LoopProgram {
            name: "t".into(),
            n: 10,
            arrays: vec!["A".into()],
            pre: vec![
                Inst::Setup {
                    reg: PredId(0),
                    init: 0,
                    bound: -10,
                },
                c.clone(),
            ],
            body: Some(LoopSpec {
                lo: 1,
                hi: 10,
                step: 1,
                body: vec![
                    c.clone(),
                    Inst::Dec {
                        reg: PredId(0),
                        by: 1,
                    },
                ],
                auto_dec: None,
            }),
            post: vec![c],
        };
        assert_eq!(p.code_size(), 5);
        assert_eq!(p.compute_count(), 3);
        assert_eq!(p.register_count(), 1);
        assert_eq!(p.dynamic_size(), 2 + 10 * 2 + 1);
    }

    #[test]
    fn register_count_sees_guards() {
        let guarded = Inst::Compute {
            guard: Some(Guard {
                reg: PredId(7),
                offset: 2,
            }),
            dest: Ref {
                array: 0,
                index: Index::i_plus(0),
            },
            op: OpKind::Add(0),
            srcs: vec![],
        };
        let p = LoopProgram {
            name: "t".into(),
            n: 1,
            arrays: vec!["A".into()],
            pre: vec![],
            body: Some(LoopSpec {
                lo: 1,
                hi: 1,
                step: 1,
                body: vec![guarded],
                auto_dec: None,
            }),
            post: vec![],
        };
        assert_eq!(p.register_count(), 1);
    }
}
