//! VLIW bundling: pack a program's instructions into long instruction
//! words and measure code size in *words* — the metric that matters on a
//! TMS320C6000-style machine where every fetch packet has a fixed width.
//!
//! Bundling respects, per straight-line region (prologue, loop body,
//! epilogue):
//!
//! * **value dependences** — an instruction reading an element written by
//!   an earlier instruction of the same region goes in a strictly later
//!   word;
//! * **conditional-register dependences** — a guarded instruction after a
//!   decrement (or setup) of its register goes in a strictly later word
//!   (VLIW semantics: all operations of a word read register state at the
//!   start of the word, so a *preceding* guarded compute may share the
//!   word with the decrement);
//! * **functional-unit widths** — at most `alu`/`mul` operations of each
//!   class per word ([`Inst::Setup`]/[`Inst::Dec`] occupy ALU slots).
//!
//! The packer is greedy earliest-fit in program order, which preserves
//! the region's semantics by construction.

use crate::ir::{Index, Inst, LoopProgram};
use cred_dfg::OpKind;

/// FU widths of the bundling target (a simplified C6x fetch packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BundleMachine {
    /// ALU issue slots per word.
    pub alu: usize,
    /// Multiplier issue slots per word.
    pub mul: usize,
}

impl BundleMachine {
    /// An 8-wide C6x-like packet (6 ALU + 2 MUL).
    pub fn c6x() -> Self {
        BundleMachine { alu: 6, mul: 2 }
    }
}

/// Word counts per region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BundleStats {
    /// Words for the code before the loop.
    pub pre_words: usize,
    /// Words for one copy of the loop body.
    pub body_words: usize,
    /// Words for the code after the loop.
    pub post_words: usize,
}

impl BundleStats {
    /// Static code size in words.
    pub fn total(&self) -> usize {
        self.pre_words + self.body_words + self.post_words
    }
}

fn is_mul_class(op: OpKind) -> bool {
    matches!(
        op,
        OpKind::Mul(_) | OpKind::Mac(_) | OpKind::Scale(..) | OpKind::ScaledMul(..)
    )
}

/// Exact syntactic equality of (array, index) pairs is a sound dependence
/// test within one region: all instructions of a region share the same
/// induction-variable value.
fn same_elem(a: (u32, Index), b: (u32, Index)) -> bool {
    a.0 == b.0 && a.1 == b.1
}

/// Pack one region; returns the number of words.
fn pack_region(insts: &[Inst], m: BundleMachine) -> usize {
    pack_region_words(insts, m)
        .iter()
        .max()
        .map_or(0, |&w| w + 1)
}

/// Word index assigned to each instruction of a region.
pub fn pack_region_words(insts: &[Inst], m: BundleMachine) -> Vec<usize> {
    let n = insts.len();
    if n == 0 {
        return Vec::new();
    }
    // earliest[i]: first admissible word for instruction i.
    let mut word_of: Vec<usize> = vec![0; n];
    // Occupancy per word.
    let mut alu_used: Vec<usize> = Vec::new();
    let mut mul_used: Vec<usize> = Vec::new();
    for i in 0..n {
        let mut earliest = 0usize;
        for j in 0..i {
            let strict = depends_strictly(&insts[j], &insts[i]);
            if strict {
                earliest = earliest.max(word_of[j] + 1);
            }
        }
        // Earliest-fit with resources.
        let mul_class = match &insts[i] {
            Inst::Compute { op, .. } => is_mul_class(*op),
            Inst::Setup { .. } | Inst::Dec { .. } => false,
        };
        let mut w = earliest;
        loop {
            while alu_used.len() <= w {
                alu_used.push(0);
                mul_used.push(0);
            }
            let fits = if mul_class {
                mul_used[w] < m.mul
            } else {
                alu_used[w] < m.alu
            };
            if fits {
                break;
            }
            w += 1;
        }
        if mul_class {
            mul_used[w] += 1;
        } else {
            alu_used[w] += 1;
        }
        word_of[i] = w;
    }
    word_of
}

/// Must `b` (later in program order) be placed in a strictly later word
/// than `a`?
fn depends_strictly(a: &Inst, b: &Inst) -> bool {
    match (a, b) {
        // Value RAW: b reads what a wrote.
        (Inst::Compute { dest, guard: _, .. }, Inst::Compute { srcs, .. }) => srcs
            .iter()
            .any(|s| same_elem((dest.array, dest.index), (s.array, s.index))),
        // Register RAW: a writes a register that guards b.
        (Inst::Dec { reg, .. }, Inst::Compute { guard: Some(g), .. })
        | (Inst::Setup { reg, .. }, Inst::Compute { guard: Some(g), .. }) => g.reg == *reg,
        // Register WAW / ordering between setup and dec of the same reg.
        (Inst::Setup { reg: r1, .. }, Inst::Dec { reg: r2, .. })
        | (Inst::Dec { reg: r1, .. }, Inst::Dec { reg: r2, .. }) => r1 == r2,
        _ => false,
    }
}

/// Pack every region of `p` on machine `m`.
pub fn bundle(p: &LoopProgram, m: BundleMachine) -> BundleStats {
    BundleStats {
        pre_words: pack_region(&p.pre, m),
        body_words: p.body.as_ref().map_or(0, |l| pack_region(&l.body, m)),
        post_words: pack_region(&p.post, m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::cred_pipelined;
    use crate::pipeline::{original_program, pipelined_program};
    use cred_dfg::{DfgBuilder, OpKind};
    use cred_retime::Retiming;

    fn figure3() -> (cred_dfg::Dfg, Retiming) {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(9));
        let bb = b.node("B", 1, OpKind::Mul(5));
        let c = b.node("C", 1, OpKind::Add(0));
        let d = b.node("D", 1, OpKind::Mul(0));
        let e = b.node("E", 1, OpKind::Add(30));
        b.edge(e, a, 4);
        b.edge(a, bb, 0);
        b.edge(a, c, 0);
        b.edge(bb, c, 2);
        b.edge(a, d, 0);
        b.edge(c, d, 0);
        b.edge(d, e, 0);
        (
            b.build().unwrap(),
            Retiming::from_values(vec![3, 2, 2, 1, 0]),
        )
    }

    #[test]
    fn original_loop_packs_to_critical_path() {
        // The unretimed figure-3 body is a 4-deep chain: 4 words even on a
        // wide machine.
        let (g, _) = figure3();
        let p = original_program(&g, 10);
        let s = bundle(&p, BundleMachine::c6x());
        assert_eq!(s.body_words, 4);
        assert_eq!(s.pre_words, 0);
    }

    #[test]
    fn retimed_kernel_packs_to_one_word() {
        // After retiming all intra-iteration deps are gone: 5 instructions
        // (2 mul + 3 alu) fit one 6+2 word.
        let (g, r) = figure3();
        let p = pipelined_program(&g, &r, 10);
        let s = bundle(&p, BundleMachine::c6x());
        assert_eq!(s.body_words, 1);
        assert!(s.pre_words >= 3, "prologue spans pipeline-fill words");
        assert!(s.post_words >= 1);
    }

    #[test]
    fn cred_kernel_word_overhead_is_small() {
        // CRED adds P=4 decrements (ALU class). The kernel has 3 ALU + 2
        // MUL computes; with 6 ALU slots the decs overflow into a second
        // word (3 + 4 = 7 > 6) — but the whole program still shrinks
        // massively vs the pipelined form.
        let (g, r) = figure3();
        let pip = bundle(&pipelined_program(&g, &r, 10), BundleMachine::c6x());
        let cred = bundle(&cred_pipelined(&g, &r, 10), BundleMachine::c6x());
        assert!(cred.total() < pip.total());
        assert_eq!(cred.post_words, 0);
        assert!(cred.body_words <= 2);
    }

    #[test]
    fn narrow_machine_needs_more_words() {
        let (g, r) = figure3();
        let p = pipelined_program(&g, &r, 10);
        let wide = bundle(&p, BundleMachine { alu: 6, mul: 2 });
        let narrow = bundle(&p, BundleMachine { alu: 1, mul: 1 });
        assert!(narrow.total() >= wide.total());
    }

    #[test]
    fn dec_shares_word_with_guarded_computes() {
        // All guarded computes precede the decrements in the CRED body, so
        // a dec may share their word (WAR is same-word safe); but a
        // compute guarded by a register decremented *earlier* in the body
        // must wait.
        let (g, r) = figure3();
        let p = cred_pipelined(&g, &r, 10);
        let body = &p.body.as_ref().unwrap().body;
        // Body layout: 5 guarded computes then 4 decs.
        let s = pack_region(body, BundleMachine { alu: 16, mul: 16 });
        assert_eq!(s, 1, "computes and decs co-issue on a wide machine");
    }

    #[test]
    fn no_strict_dependence_within_a_word() {
        // Soundness invariant of the packer: two instructions sharing a
        // word never have a strict (later-word) dependence.
        let (g, r) = figure3();
        for p in [
            pipelined_program(&g, &r, 10),
            cred_pipelined(&g, &r, 10),
            original_program(&g, 10),
            crate::cred::cred_retime_unfold(&g, &r, 3, 30, crate::DecMode::Bulk),
            crate::cred::cred_retime_unfold(&g, &r, 3, 30, crate::DecMode::PerCopy),
            crate::collapse::collapse_epilogue(&g, &r, 20),
        ] {
            let regions: Vec<&[Inst]> = [
                Some(p.pre.as_slice()),
                p.body.as_ref().map(|l| l.body.as_slice()),
                Some(p.post.as_slice()),
            ]
            .into_iter()
            .flatten()
            .collect();
            for insts in regions {
                let words = pack_region_words(insts, BundleMachine { alu: 2, mul: 1 });
                for i in 0..insts.len() {
                    for j in 0..i {
                        if words[i] == words[j] {
                            assert!(
                                !depends_strictly(&insts[j], &insts[i]),
                                "strict dependence inside one word"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn value_dependences_serialize_within_straight_line_code() {
        // Prologue instances within one slot depend on each other.
        let (g, r) = figure3();
        let p = pipelined_program(&g, &r, 10);
        // Slot 0 contains A[3], B[2], C[2], D[1] where D[1] reads C[1]
        // (earlier slot) and A/B/C chains: at least 2 words for 8 insts
        // with dependences.
        let s = pack_region(&p.pre, BundleMachine::c6x());
        assert!(
            s >= 3,
            "pipeline fill has at least 3 dependent levels, got {s}"
        );
    }
}
