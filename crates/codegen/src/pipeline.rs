//! Baseline generators: the original loop and the software-pipelined
//! (retimed) loop with explicit prologue and epilogue — the code whose size
//! the paper sets out to reduce.

use crate::ir::{Index, Inst, LoopProgram, LoopSpec, Ref};
use cred_dfg::{algo, Dfg, NodeId};
use cred_retime::Retiming;

/// Shift an index expression by a constant (used to derive source indices
/// `I - d` from a destination index `I`).
pub(crate) fn shift(idx: Index, by: i64) -> Index {
    match idx {
        Index::Const(k) => Index::Const(k + by),
        Index::NPlus(k) => Index::NPlus(k + by),
        Index::Loop { scale, offset } => Index::Loop {
            scale,
            offset: offset + by,
        },
    }
}

/// Emit the compute instance "node `v` at original iteration `idx`":
/// `v[idx] = op_v(u[idx - d(e)] for each in-edge e(u -> v))`.
pub(crate) fn instance(g: &Dfg, v: NodeId, idx: Index, guard: Option<crate::ir::Guard>) -> Inst {
    let srcs = g
        .in_edges(v)
        .iter()
        .map(|&e| {
            let ed = g.edge(e);
            Ref {
                array: ed.src.0,
                index: shift(idx, -(ed.delay as i64)),
            }
        })
        .collect();
    Inst::Compute {
        guard,
        dest: Ref {
            array: v.0,
            index: idx,
        },
        op: g.node(v).op,
        srcs,
    }
}

pub(crate) fn array_names(g: &Dfg) -> Vec<String> {
    g.node_ids().map(|v| g.node(v).name.clone()).collect()
}

/// The plain (untransformed) loop: `for i = 1 to n { body }`, body in
/// zero-delay topological order. Code size `L = |V|`.
pub fn original_program(g: &Dfg, n: u64) -> LoopProgram {
    let order = algo::zero_delay_topo_order(g).expect("well-formed DFG");
    let body = order
        .iter()
        .map(|&v| instance(g, v, Index::i_plus(0), None))
        .collect();
    LoopProgram {
        name: "original".into(),
        n,
        arrays: array_names(g),
        pre: Vec::new(),
        body: Some(LoopSpec {
            lo: 1,
            hi: n as i64,
            step: 1,
            body,
            auto_dec: None,
        }),
        post: Vec::new(),
    }
}

/// The software-pipelined loop of a retimed DFG: explicit prologue, a
/// kernel executing `n - M_r` times, and an explicit epilogue
/// (Figure 3(a)). Code size `L + |V| * M_r` for `n >= M_r`.
///
/// The *kernel instance at loop index `i`* computes, for each node `v`,
/// original iteration `i + r(v)`; the prologue and epilogue are the kernel
/// instances at `i <= 0` and `i > n - M_r` with the out-of-range
/// computations removed. Instruction order inside one instance is the
/// zero-delay topological order of the *retimed* graph.
///
/// # Panics
/// Panics if `r` is not normalized or not legal for `g`.
pub fn pipelined_program(g: &Dfg, r: &Retiming, n: u64) -> LoopProgram {
    assert!(r.is_normalized(), "retiming must be normalized");
    assert!(r.is_legal(g), "retiming must be legal");
    let gr = r.apply(g);
    let order = algo::zero_delay_topo_order(&gr).expect("retimed graph is well-formed");
    let m = r.max_value();
    let n = n as i64;

    let emit_slot = |s: i64, mk: &dyn Fn(i64) -> Index, out: &mut Vec<Inst>| {
        for &v in &order {
            let idx = s + r.get(v);
            if (1..=n).contains(&idx) {
                out.push(instance(g, v, mk(idx), None));
            }
        }
    };

    // Prologue: all non-positive slots (the in-range filter inside
    // emit_slot makes this correct even when n < M_r).
    let mut pre = Vec::new();
    for s in (1 - m)..=0 {
        emit_slot(s, &|idx| Index::Const(idx), &mut pre);
    }
    // Kernel: slots 1 ..= n - M, where every node is in range.
    let body = if n - m >= 1 {
        Some(LoopSpec {
            lo: 1,
            hi: n - m,
            step: 1,
            body: order
                .iter()
                .map(|&v| instance(g, v, Index::i_plus(r.get(v)), None))
                .collect(),
            auto_dec: None,
        })
    } else {
        None
    };
    // Epilogue: slots beyond the kernel.
    let mut post = Vec::new();
    for s in (n - m + 1).max(1)..=n {
        emit_slot(s, &|idx| Index::NPlus(idx - n), &mut post);
    }
    LoopProgram {
        name: "pipelined".into(),
        n: n as u64,
        arrays: array_names(g),
        pre,
        body,
        post,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::{DfgBuilder, OpKind};

    /// The Figure 3 DFG: A[i]=E[i-4]+9; B[i]=A[i]*5; C[i]=A[i]+B[i-2];
    /// D[i]=A[i]*C[i]; E[i]=D[i]+30.
    pub(crate) fn figure3_graph() -> (Dfg, Vec<NodeId>) {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(9));
        let bb = b.node("B", 1, OpKind::Mul(5));
        let c = b.node("C", 1, OpKind::Add(0));
        let d = b.node("D", 1, OpKind::Mul(0));
        let e = b.node("E", 1, OpKind::Add(30));
        b.edge(e, a, 4);
        b.edge(a, bb, 0);
        b.edge(a, c, 0);
        b.edge(bb, c, 2);
        b.edge(a, d, 0);
        b.edge(c, d, 0);
        b.edge(d, e, 0);
        (b.build().unwrap(), vec![a, bb, c, d, e])
    }

    pub(crate) fn figure3_retiming() -> Retiming {
        Retiming::from_values(vec![3, 2, 2, 1, 0])
    }

    #[test]
    fn original_size_is_l() {
        let (g, _) = figure3_graph();
        let p = original_program(&g, 100);
        assert_eq!(p.code_size(), 5);
        assert_eq!(p.body.as_ref().unwrap().trip_count(), 100);
    }

    #[test]
    fn figure3_pipelined_sizes() {
        let (g, _) = figure3_graph();
        let r = figure3_retiming();
        assert!(r.is_legal(&g));
        let p = pipelined_program(&g, &r, 100);
        // Prologue: sum r = 8; epilogue: sum (3 - r) = 7; kernel 5.
        assert_eq!(p.pre.len(), 8);
        assert_eq!(p.body.as_ref().unwrap().body.len(), 5);
        assert_eq!(p.post.len(), 7);
        assert_eq!(p.code_size(), 20);
        assert_eq!(p.code_size() as i64, r.pipelined_code_size(5));
        // Kernel runs n - M = 97 times.
        assert_eq!(p.body.as_ref().unwrap().trip_count(), 97);
    }

    #[test]
    fn figure3_prologue_matches_paper_listing() {
        // Figure 3(a) prologue: A[1]; A[2], B[1], C[1]; A[3], B[2], C[2], D[1].
        let (g, _) = figure3_graph();
        let p = pipelined_program(&g, &figure3_retiming(), 100);
        let rendered: Vec<String> = p
            .pre
            .iter()
            .map(|inst| match inst {
                Inst::Compute { dest, .. } => {
                    format!("{}[{}]", p.arrays[dest.array as usize], dest.index)
                }
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            rendered,
            ["A[1]", "A[2]", "B[1]", "C[1]", "A[3]", "B[2]", "C[2]", "D[1]"]
        );
    }

    #[test]
    fn figure3_epilogue_multiset_matches_paper() {
        let (g, _) = figure3_graph();
        let p = pipelined_program(&g, &figure3_retiming(), 100);
        let mut rendered: Vec<String> = p
            .post
            .iter()
            .map(|inst| match inst {
                Inst::Compute { dest, .. } => {
                    format!("{}[{}]", p.arrays[dest.array as usize], dest.index)
                }
                _ => unreachable!(),
            })
            .collect();
        rendered.sort();
        let mut expected = ["E[n]", "D[n]", "E[n-1]", "B[n]", "C[n]", "D[n-1]", "E[n-2]"]
            .map(String::from)
            .to_vec();
        expected.sort();
        assert_eq!(rendered, expected);
    }

    #[test]
    fn kernel_sources_use_original_delays() {
        // Kernel instance of A at i computes A[i+3] = E[i+3-4] = E[i-1].
        let (g, nodes) = figure3_graph();
        let p = pipelined_program(&g, &figure3_retiming(), 100);
        let body = &p.body.as_ref().unwrap().body;
        let a_inst = body
            .iter()
            .find_map(|inst| match inst {
                Inst::Compute { dest, srcs, .. } if dest.array == nodes[0].0 => Some(srcs.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(a_inst.len(), 1);
        assert_eq!(a_inst[0].array, nodes[4].0); // E
        assert_eq!(a_inst[0].index, Index::i_plus(-1));
    }

    #[test]
    fn zero_retiming_degenerates_to_original() {
        let (g, _) = figure3_graph();
        let r = Retiming::zero(5);
        let p = pipelined_program(&g, &r, 50);
        assert!(p.pre.is_empty());
        assert!(p.post.is_empty());
        assert_eq!(p.code_size(), 5);
        assert_eq!(p.body.as_ref().unwrap().trip_count(), 50);
    }

    #[test]
    fn tiny_trip_count_smaller_than_pipeline_depth() {
        // n = 2 < M = 3: no kernel; straight-line code computes each node
        // exactly twice.
        let (g, _) = figure3_graph();
        let p = pipelined_program(&g, &figure3_retiming(), 2);
        assert!(p.body.is_none());
        assert_eq!(p.compute_count(), 10); // 5 nodes x 2 iterations
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn unnormalized_retiming_rejected() {
        let (g, _) = figure3_graph();
        let r = Retiming::from_values(vec![2, 1, 1, 0, -1]);
        let _ = pipelined_program(&g, &r, 10);
    }
}
