//! Maxlive — data-register pressure of a cyclic (kernel) schedule.
//!
//! The paper tracks `P_r`, the *conditional* registers CRED needs, but a
//! software-pipelined kernel also holds *data* values in registers: every
//! edge value produced by one operation and consumed `d` iterations later
//! must stay live across the intervening cycles. The classic modulo-
//! scheduling metric for that pressure is **maxlive**: the maximum number
//! of simultaneously live values over the cycles of the steady-state
//! kernel (see "A Tiling Perspective for Register Optimization" in
//! PAPERS.md). This module computes it for the two kernel shapes the
//! repo produces:
//!
//! * the **sequential** kernel of `retime_unfold_program`: `f` copies of
//!   the retimed body in zero-delay topological order, one instruction
//!   per cycle, kernel length `II = f * L`;
//! * the **modulo** kernel of `cred-exact`: one operation per node at
//!   issue cycle `sigma(v) = stage(v) * II + slot(v)`.
//!
//! Both reduce to the same abstract form: a set of operation instances
//! with absolute issue cycles inside a kernel of length `II`, plus
//! def-use dependences annotated with the number of *kernel* iterations
//! between producer and consumer. A value defined at cycle `t` whose
//! last use is `L_v` cycles later is live on the half-open interval
//! `[t, t + L_v)`; in steady state the copies from earlier kernel
//! iterations overlap, so cycle `c` of the kernel carries
//! `ceil((L_v - delta) / II)` copies, `delta = (c - t) mod II`. Maxlive
//! is the per-cycle sum, maximized over the kernel. Values nobody
//! consumes (pure outputs, stored straight to memory) occupy no
//! register and are excluded.
//!
//! [`KernelSchedule::replay_maxlive`] recomputes the same quantity by a
//! deliberately different algorithm — explicit interval simulation over
//! enough unrolled kernel iterations to reach steady state — and exists
//! as the differential oracle for the closed-form computation.

use cred_dfg::{algo, Dfg};
use cred_retime::Retiming;

/// One def-use dependence between operation instances of the kernel:
/// (producer op, consumer op, kernel iterations between them).
type Dep = (u32, u32, i64);

/// A cyclic schedule of operation instances, abstracted to exactly what
/// liveness needs: the kernel length, each instance's absolute issue
/// cycle, and the def-use dependences with their kernel-iteration
/// distances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSchedule {
    ii: u64,
    cycles: Vec<i64>,
    deps: Vec<Dep>,
}

/// What [`KernelSchedule::maxlive`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxliveReport {
    /// Kernel length the pressure was computed over.
    pub ii: u64,
    /// Maximum number of simultaneously live values over the kernel.
    pub maxlive: usize,
    /// First kernel cycle (in `0..ii`) achieving the maximum.
    pub peak_cycle: u64,
}

impl KernelSchedule {
    /// The sequential kernel of `retime_unfold_program(g, r, f, _)`: the
    /// loop body issues `f` copies of the retimed body, each in
    /// zero-delay topological order, one instruction per cycle. Copy `j`
    /// of node `v` issues at cycle `j * L + pos(v)`; the kernel is
    /// `II = f * L` cycles long and advances the iteration index by `f`.
    ///
    /// An edge `u -> v` with retimed delay `d` connects copy `j` of `u`
    /// to copy `j + d` of the *slot* sequence, which lands in copy
    /// `(j + d) mod f` of the kernel, `(j + d) div f` kernel iterations
    /// later.
    pub fn sequential(g: &Dfg, r: &Retiming, f: usize) -> KernelSchedule {
        assert!(f >= 1, "unfolding factor must be at least 1");
        assert!(r.is_legal(g), "retiming must be legal");
        let gr = r.apply(g);
        let order = algo::zero_delay_topo_order(&gr).expect("retimed graph well-formed");
        let l = g.node_count();
        let mut pos = vec![0usize; l];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        let op = |j: usize, v: usize| (j * l + pos[v]) as u32;
        let mut cycles = vec![0i64; f * l];
        for j in 0..f {
            for v in 0..l {
                cycles[op(j, v) as usize] = (j * l + pos[v]) as i64;
            }
        }
        let mut deps = Vec::with_capacity(f * g.edge_count());
        for j in 0..f {
            for e in g.edge_ids() {
                let ed = g.edge(e);
                let d = r.retimed_delay(g, e);
                debug_assert!(d >= 0, "legal retiming keeps delays non-negative");
                let slot = j as i64 + d;
                let (k, jc) = (slot.div_euclid(f as i64), slot.rem_euclid(f as i64));
                deps.push((op(j, ed.src.index()), op(jc as usize, ed.dst.index()), k));
            }
        }
        KernelSchedule {
            ii: (f * l) as u64,
            cycles,
            deps,
        }
    }

    /// The modulo kernel of an exact schedule: node `v` issues at
    /// `sigma(v) = stage[v] * ii + slot[v]`, the kernel is `ii` cycles
    /// long and advances the iteration index by 1, so an edge with
    /// original delay `d` spans `d` kernel iterations.
    pub fn modulo(g: &Dfg, slot: &[u32], stage: &[i64], ii: u64) -> KernelSchedule {
        let l = g.node_count();
        assert_eq!(slot.len(), l, "one slot per node");
        assert_eq!(stage.len(), l, "one stage per node");
        assert!(ii >= 1, "initiation interval must be at least 1");
        let cycles: Vec<i64> = (0..l)
            .map(|v| stage[v] * ii as i64 + slot[v] as i64)
            .collect();
        let deps = g
            .edge_ids()
            .map(|e| {
                let ed = g.edge(e);
                (
                    ed.src.index() as u32,
                    ed.dst.index() as u32,
                    ed.delay as i64,
                )
            })
            .collect();
        KernelSchedule { ii, cycles, deps }
    }

    /// Kernel length in cycles.
    pub fn ii(&self) -> u64 {
        self.ii
    }

    /// Per-operation value lifetimes: the distance from an op's issue
    /// cycle to its last use (`None` for values nobody consumes). The
    /// lifetime of dependence `(u, v, k)` is
    /// `cycle(v) + k * II - cycle(u)`.
    fn lifetimes(&self) -> Vec<Option<i64>> {
        let mut life: Vec<Option<i64>> = vec![None; self.cycles.len()];
        for &(u, v, k) in &self.deps {
            let lv = self.cycles[v as usize] + k * self.ii as i64 - self.cycles[u as usize];
            assert!(lv >= 0, "schedule violates dependence (negative lifetime)");
            let slot = &mut life[u as usize];
            *slot = Some(slot.map_or(lv, |cur| cur.max(lv)));
        }
        life
    }

    /// Closed-form steady-state register pressure: for every kernel cycle
    /// `c`, sum over value streams the number of overlapping live copies,
    /// and take the maximum.
    pub fn maxlive(&self) -> MaxliveReport {
        let ii = self.ii as i64;
        let life = self.lifetimes();
        let mut per_cycle = vec![0usize; self.ii as usize];
        for (u, lv) in life.iter().enumerate() {
            let Some(lv) = *lv else { continue };
            if lv == 0 {
                continue;
            }
            let t = self.cycles[u].rem_euclid(ii);
            for (c, count) in per_cycle.iter_mut().enumerate() {
                let delta = (c as i64 - t).rem_euclid(ii);
                if delta < lv {
                    *count += ((lv - 1 - delta) / ii + 1) as usize;
                }
            }
        }
        let (peak_cycle, &maxlive) = per_cycle
            .iter()
            .enumerate()
            .max_by_key(|&(c, &m)| (m, std::cmp::Reverse(c)))
            .expect("kernel has at least one cycle");
        MaxliveReport {
            ii: self.ii,
            maxlive,
            peak_cycle: peak_cycle as u64,
        }
    }

    /// Brute-force differential oracle for [`maxlive`](Self::maxlive):
    /// unroll enough kernel iterations that a full steady-state window
    /// exists, materialize every value's live interval explicitly, and
    /// count per absolute cycle inside that window. Shares no code with
    /// the closed-form computation.
    pub fn replay_maxlive(&self) -> usize {
        let ii = self.ii as i64;
        let life = self.lifetimes();
        // Window start: past the longest-lived value of iteration 0, so
        // no instance from a "negative" iteration could still be live.
        let horizon = life
            .iter()
            .enumerate()
            .filter_map(|(u, lv)| lv.map(|lv| self.cycles[u] + lv))
            .max()
            .unwrap_or(0)
            .max(0);
        let start = (horizon + ii - 1) / ii * ii;
        let mut counts = vec![0usize; self.ii as usize];
        let rounds = start / ii + 2;
        for q in 0..rounds {
            for (u, lv) in life.iter().enumerate() {
                let Some(lv) = *lv else { continue };
                let def = self.cycles[u] + q * ii;
                // Clip [def, def + lv) against the window [start, start + ii).
                let lo = def.max(start);
                let hi = (def + lv).min(start + ii);
                for c in lo..hi {
                    counts[(c - start) as usize] += 1;
                }
            }
        }
        counts.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::gen;
    use cred_retime::min_period_retiming;
    use cred_retime::span::{compact_values, min_span_retiming};

    fn pipelined(g: &Dfg) -> Retiming {
        let opt = min_period_retiming(g);
        let r = min_span_retiming(g, opt.period).expect("optimum feasible");
        compact_values(g, opt.period, &r)
    }

    #[test]
    fn zero_retiming_chain_pressure_is_explicit() {
        // a -> b -> c, unit delays on the feedback only: with the zero
        // retiming and f = 1 the kernel is the plain body. Each value is
        // consumed one cycle after its definition, except the feedback
        // value which stays live across the whole kernel.
        let g = gen::chain_with_feedback(3, 1);
        let sched = KernelSchedule::sequential(&g, &Retiming::zero(3), 1);
        let report = sched.maxlive();
        assert_eq!(report.ii, 3);
        assert_eq!(report.maxlive, sched.replay_maxlive());
        assert!(report.maxlive >= 1);
    }

    #[test]
    fn lifetime_spanning_the_kernel_counts_every_cycle() {
        // One node feeding itself with delay 1, f = 1: the value is live
        // from its def to its redefinition — exactly II cycles — so one
        // copy is live at every cycle.
        let mut b = cred_dfg::DfgBuilder::new();
        let a = b.unit("a");
        b.edge(a, a, 1);
        let g = b.build().unwrap();
        let sched = KernelSchedule::sequential(&g, &Retiming::zero(1), 1);
        assert_eq!(sched.maxlive().maxlive, 1);
        assert_eq!(sched.replay_maxlive(), 1);
    }

    #[test]
    fn sequential_matches_replay_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 3 + (seed as usize % 6),
                    back_edges: 1 + (seed as usize % 2),
                    ..Default::default()
                },
            );
            let r = pipelined(&g);
            for f in 1..=3usize {
                let sched = KernelSchedule::sequential(&g, &r, f);
                let report = sched.maxlive();
                assert_eq!(
                    report.maxlive,
                    sched.replay_maxlive(),
                    "seed {seed} f {f}: closed form disagrees with replay"
                );
                assert_eq!(report.ii, (f * g.node_count()) as u64);
                assert!((report.peak_cycle as i64) < report.ii as i64);
            }
        }
    }

    #[test]
    fn modulo_matches_replay_on_asap_like_schedules() {
        // Hand-rolled "modulo schedule": slot = position in topo order
        // modulo II, stage = position div II. Not resource-feasible, but
        // dependence-legal for delay >= stage gaps on these graphs — the
        // liveness math only needs legality.
        let g = gen::chain_with_feedback(6, 3);
        let order = algo::zero_delay_topo_order(&g).unwrap();
        for ii in [2u64, 3, 6] {
            let mut slot = vec![0u32; 6];
            let mut stage = vec![0i64; 6];
            for (i, v) in order.iter().enumerate() {
                slot[v.index()] = (i as u64 % ii) as u32;
                stage[v.index()] = (i as u64 / ii) as i64;
            }
            let sched = KernelSchedule::modulo(&g, &slot, &stage, ii);
            assert_eq!(sched.maxlive().maxlive, sched.replay_maxlive(), "ii {ii}");
        }
    }

    #[test]
    fn deeper_pipelining_never_reduces_to_zero() {
        let g = gen::chain_with_feedback(6, 3);
        let r = pipelined(&g);
        for f in 1..=4 {
            let m = KernelSchedule::sequential(&g, &r, f).maxlive().maxlive;
            assert!(m >= 1, "a graph with edges holds at least one live value");
        }
    }
}
