//! Iterative modulo scheduling (Rau-style, simplified): the software-
//! pipelining formulation used by the TMS320C6000 compiler the paper
//! builds on (its reference \[4\] reduces the code size of *modulo-scheduled*
//! loops; CRED generalizes that).
//!
//! For an initiation interval `II`, every operation gets an issue time
//! `sigma(v)` such that
//!
//! * dependences hold across iterations: for `e(u -> v)`,
//!   `sigma(v) >= sigma(u) + t(u) - II * d(e)`;
//! * no modulo issue slot over-subscribes a functional-unit kind
//!   (units are modeled fully pipelined: an op occupies its unit's issue
//!   slot `sigma(v) mod II` only).
//!
//! The smallest feasible `II` is lower-bounded by `MII = max(ResMII,
//! RecMII)`; the scheduler searches upward from `MII` with an eviction
//! budget per `II` (iterative modulo scheduling).
//!
//! A modulo schedule is itself a software pipeline: `stage(v) =
//! floor(sigma(v) / II)` and the *stage retiming* `r(v) = max_stage -
//! stage(v)` is always a legal retiming of the DFG (proof in
//! [`stage_retiming`]), so CRED applies to modulo-scheduled loops
//! unchanged — this is exactly the paper's claim instantiated for the
//! TI-style flow.

use crate::resources::{fu_kind, FuConfig, FuKind, FU_KINDS};
use cred_dfg::{algo, Dfg, NodeId};
use cred_retime::Retiming;

/// A modulo schedule.
#[derive(Debug, Clone)]
pub struct ModuloSchedule {
    /// The initiation interval.
    pub ii: u64,
    /// Issue time per node.
    pub sigma: Vec<i64>,
}

impl ModuloSchedule {
    /// Pipeline stage of `v`: `floor(sigma / II)`.
    pub fn stage(&self, v: NodeId) -> i64 {
        self.sigma[v.index()].div_euclid(self.ii as i64)
    }

    /// Number of pipeline stages (`max stage + 1`).
    pub fn stage_count(&self) -> i64 {
        (0..self.sigma.len() as u32)
            .map(|v| self.stage(NodeId(v)))
            .max()
            .map_or(1, |m| m + 1)
    }

    /// Verify all dependence and resource constraints.
    pub fn verify(&self, g: &Dfg, fu: &FuConfig) -> Result<(), String> {
        let ii = self.ii as i64;
        for e in g.edge_ids() {
            let ed = g.edge(e);
            let lhs = self.sigma[ed.dst.index()];
            let rhs =
                self.sigma[ed.src.index()] + g.node(ed.src).time as i64 - ii * ed.delay as i64;
            if lhs < rhs {
                return Err(format!(
                    "dependence violated: sigma({}) = {lhs} < {rhs}",
                    g.node(ed.dst).name
                ));
            }
        }
        if !fu.is_unlimited() {
            let mut usage = vec![[0usize; FU_KINDS]; self.ii as usize];
            for v in g.node_ids() {
                let slot = self.sigma[v.index()].rem_euclid(ii) as usize;
                let kind = fu_kind(g.node(v).op);
                usage[slot][kind.index()] += 1;
            }
            for (slot, u) in usage.iter().enumerate() {
                for kind in [FuKind::Alu, FuKind::Mul] {
                    if let Some(limit) = fu.units(kind) {
                        if u[kind.index()] > limit {
                            return Err(format!(
                                "slot {slot} uses {} {kind:?} units (limit {limit})",
                                u[kind.index()]
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Resource-constrained lower bound on the initiation interval.
pub fn res_mii(g: &Dfg, fu: &FuConfig) -> u64 {
    let mut counts = [0u64; FU_KINDS];
    for v in g.node_ids() {
        counts[fu_kind(g.node(v).op).index()] += 1;
    }
    let mut mii = 1;
    for kind in [FuKind::Alu, FuKind::Mul] {
        if let Some(units) = fu.units(kind) {
            mii = mii.max(counts[kind.index()].div_ceil(units as u64));
        }
    }
    mii
}

/// Recurrence-constrained lower bound: `ceil(B(G))`.
pub fn rec_mii(g: &Dfg) -> u64 {
    algo::iteration_bound(g).map_or(1, |b| b.ceil().max(1) as u64)
}

/// The combined lower bound `MII`.
pub fn mii(g: &Dfg, fu: &FuConfig) -> u64 {
    res_mii(g, fu).max(rec_mii(g))
}

/// Iterative modulo scheduling: search `II` from `MII` to `max_ii`
/// (inclusive); per `II`, schedule highest-first with eviction and a
/// budget of `budget_ratio * |V|` placements.
pub fn modulo_schedule(g: &Dfg, fu: &FuConfig, max_ii: u64) -> Option<ModuloSchedule> {
    let start = mii(g, fu);
    (start..=max_ii.max(start)).find_map(|ii| try_ii(g, fu, ii))
}

fn try_ii(g: &Dfg, fu: &FuConfig, ii: u64) -> Option<ModuloSchedule> {
    let n = g.node_count();
    let ii_i = ii as i64;
    // Height priority: longest (time - II*delay)-weighted path to any sink,
    // approximated by zero-delay height (sufficient for the benchmarks).
    let order = algo::zero_delay_topo_order(g)?;
    let mut height = vec![0i64; n];
    for &v in order.iter().rev() {
        let mut h = 0;
        for &e in g.out_edges(v) {
            let ed = g.edge(e);
            if ed.delay == 0 {
                h = h.max(height[ed.dst.index()]);
            }
        }
        height[v.index()] = h + g.node(v).time as i64;
    }

    let mut sigma: Vec<Option<i64>> = vec![None; n];
    // Modulo reservation table: per slot, per kind, the set of nodes.
    let mut mrt: Vec<[Vec<NodeId>; FU_KINDS]> = (0..ii).map(|_| [Vec::new(), Vec::new()]).collect();
    let mut budget = 16 * n as i64;
    // Worklist ordered by height (recomputed lazily).
    let mut work: Vec<NodeId> = g.node_ids().collect();
    work.sort_by_key(|v| std::cmp::Reverse(height[v.index()]));
    let mut queue: std::collections::VecDeque<NodeId> = work.into();
    let mut last_forced: Vec<i64> = vec![i64::MIN; n];

    while let Some(v) = queue.pop_front() {
        budget -= 1;
        if budget < 0 {
            return None;
        }
        // Earliest start from scheduled predecessors.
        let mut estart = 0i64;
        for &e in g.in_edges(v) {
            let ed = g.edge(e);
            if let Some(su) = sigma[ed.src.index()] {
                estart = estart.max(su + g.node(ed.src).time as i64 - ii_i * ed.delay as i64);
            }
        }
        // For forced re-placement, never repeat the same slot.
        let min_t = if last_forced[v.index()] == i64::MIN {
            estart
        } else {
            estart.max(last_forced[v.index()] + 1)
        };
        let kind = fu_kind(g.node(v).op);
        let limit = fu.units(kind);
        // Find a resource-free slot in [min_t, min_t + II).
        let mut chosen = None;
        for t in min_t..min_t + ii_i {
            let slot = t.rem_euclid(ii_i) as usize;
            let free = limit.is_none_or(|l| mrt[slot][kind.index()].len() < l);
            if free {
                chosen = Some(t);
                break;
            }
        }
        let t = chosen.unwrap_or(min_t); // force, evicting below
        last_forced[v.index()] = t;
        let slot = t.rem_euclid(ii_i) as usize;
        if chosen.is_none() {
            // Evict one conflicting op from the slot.
            if let Some(victim) = mrt[slot][kind.index()].pop() {
                sigma[victim.index()] = None;
                queue.push_back(victim);
            }
        }
        sigma[v.index()] = Some(t);
        mrt[slot][kind.index()].push(v);
        // Displace any scheduled *successor* whose dependence is now
        // violated (intra- and inter-iteration).
        for &e in g.out_edges(v) {
            let ed = g.edge(e);
            let w = ed.dst;
            if w == v {
                continue;
            }
            if let Some(sw) = sigma[w.index()] {
                if sw < t + g.node(v).time as i64 - ii_i * ed.delay as i64 {
                    sigma[w.index()] = None;
                    let kslot = // remove w from its reservation slot
                        sw.rem_euclid(ii_i) as usize;
                    let wk = fu_kind(g.node(w).op);
                    mrt[kslot][wk.index()].retain(|&x| x != w);
                    queue.push_back(w);
                }
            }
        }
        // Self-loops: check immediately.
        for &e in g.in_edges(v) {
            let ed = g.edge(e);
            if ed.src == v && t < t + g.node(v).time as i64 - ii_i * ed.delay as i64 {
                return None; // II below the self-cycle bound; try larger II
            }
        }
    }
    let sched = ModuloSchedule {
        ii,
        sigma: sigma.into_iter().map(Option::unwrap).collect(),
    };
    sched.verify(g, fu).ok()?;
    Some(sched)
}

/// The software-pipelining retiming induced by the modulo schedule's
/// stages: `r(v) = max_stage - stage(v)`, normalized.
///
/// Always legal: for `e(u -> v)`, `sigma(v) >= sigma(u) + t(u) - II*d`
/// with `t(u) >= 1` gives `sigma(v) + II*d >= sigma(u) + 1`, hence
/// `stage(v) + d >= stage(u)`, i.e. `d + r(u) - r(v) >= 0`.
pub fn stage_retiming(g: &Dfg, sched: &ModuloSchedule) -> Retiming {
    let max_stage = sched.stage_count() - 1;
    let vals: Vec<i64> = g.node_ids().map(|v| max_stage - sched.stage(v)).collect();
    let mut r = Retiming::from_values(vals);
    r.normalize();
    debug_assert!(r.is_legal(g), "stage retiming must be legal");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::{gen, DfgBuilder, OpKind};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn mii_bounds() {
        // 4 muls on 1 multiplier: ResMII = 4.
        let mut b = DfgBuilder::new();
        let ms: Vec<_> = (0..4)
            .map(|i| b.node(format!("m{i}"), 1, OpKind::Mul(0)))
            .collect();
        b.edge(ms[0], ms[0], 1);
        let g = b.build().unwrap();
        let fu = FuConfig::with_units(1, 1);
        assert_eq!(res_mii(&g, &fu), 4);
        assert_eq!(rec_mii(&g), 1);
        assert_eq!(mii(&g, &fu), 4);
    }

    #[test]
    fn rec_mii_from_iteration_bound() {
        let g = gen::chain_with_feedback(6, 2); // B = 3
        assert_eq!(rec_mii(&g), 3);
    }

    #[test]
    fn schedules_chain_at_bound() {
        let g = gen::chain_with_feedback(6, 2);
        let fu = FuConfig::with_units(2, 2);
        let s = modulo_schedule(&g, &fu, 32).expect("schedulable");
        assert_eq!(s.ii, 3, "achieves RecMII");
        s.verify(&g, &fu).unwrap();
    }

    #[test]
    fn respects_resource_limits() {
        // 6 independent adds on 2 ALUs: II = 3 and each slot has <= 2.
        let mut b = DfgBuilder::new();
        let ns: Vec<_> = (0..6).map(|i| b.unit(format!("a{i}"))).collect();
        b.edge(ns[0], ns[0], 1);
        let g = b.build().unwrap();
        let fu = FuConfig::with_units(2, 1);
        let s = modulo_schedule(&g, &fu, 16).unwrap();
        assert_eq!(s.ii, 3);
        s.verify(&g, &fu).unwrap();
    }

    #[test]
    fn stage_retiming_is_legal_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 9,
                    max_delay: 3,
                    max_time: 2,
                    ..Default::default()
                },
            );
            let fu = FuConfig::with_units(2, 1);
            let Some(s) = modulo_schedule(&g, &fu, 64) else {
                continue;
            };
            s.verify(&g, &fu).unwrap();
            let r = stage_retiming(&g, &s);
            assert!(r.is_legal(&g));
        }
    }

    #[test]
    fn modulo_ii_never_below_mii_and_reaches_it_often() {
        let mut rng = StdRng::seed_from_u64(78);
        let mut reached = 0;
        let mut total = 0;
        for _ in 0..20 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 8,
                    max_delay: 2,
                    ..Default::default()
                },
            );
            let fu = FuConfig::with_units(2, 1);
            if let Some(s) = modulo_schedule(&g, &fu, 64) {
                total += 1;
                assert!(s.ii >= mii(&g, &fu));
                if s.ii == mii(&g, &fu) {
                    reached += 1;
                }
            }
        }
        assert!(total > 10, "scheduler should succeed on most graphs");
        assert!(
            reached * 2 >= total,
            "MII should be reached at least half the time"
        );
    }

    #[test]
    fn benchmarks_schedule_and_feed_cred() {
        // End-to-end: modulo schedule a benchmark, derive the stage
        // retiming, and let the codegen/vm crates (tested downstream)
        // consume it. Here we check II and legality only.
        let g = gen::chain_with_feedback(8, 4); // B = 2
                                                // 8 ALU ops on 4 units: ResMII = 2 = RecMII.
        let fu = FuConfig::with_units(4, 2);
        let s = modulo_schedule(&g, &fu, 32).unwrap();
        assert_eq!(s.ii, 2);
        let r = stage_retiming(&g, &s);
        assert!(r.is_legal(&g));
        assert!(r.max_value() >= 1, "an 8-deep chain at II=2 needs stages");
    }

    #[test]
    fn infeasible_when_max_ii_too_small() {
        let g = gen::chain_with_feedback(6, 2); // RecMII = 3
        let fu = FuConfig::with_units(1, 1);
        // max_ii below ResMII(=6): the search runs from MII=6 to
        // max(max_ii, 6)... so pass a graph where even large II fails is
        // hard; instead check the search starts at MII.
        let s = modulo_schedule(&g, &fu, 64).unwrap();
        assert!(s.ii >= 6);
    }
}
