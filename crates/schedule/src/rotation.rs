//! Rotation scheduling (Chao–Sha): schedule-driven software pipelining.
//!
//! Each rotation takes the nodes in the first control step of the current
//! schedule and pushes one delay forward through them (`r(v) += 1` in the
//! paper's convention) — legal because first-row nodes have no zero-delay
//! incoming edges, so every incoming edge carries a delay to draw from.
//! The retimed graph is rescheduled; the shortest schedule seen wins.
//! Every rotation is a retiming, hence a software-pipelining step; the
//! resulting retiming feeds the CRED code generator exactly like one
//! produced by OPT/FEAS.

use crate::list::{list_schedule, StaticSchedule};
use crate::resources::FuConfig;
use cred_dfg::Dfg;
use cred_retime::Retiming;

/// Result of [`rotation_schedule`].
#[derive(Debug, Clone)]
pub struct RotationResult {
    /// The normalized retiming accumulated by the winning rotation count.
    pub retiming: Retiming,
    /// The winning schedule (of the retimed graph).
    pub schedule: StaticSchedule,
    /// Schedule length of the winning schedule.
    pub length: u64,
}

/// Run rotation scheduling for up to `rounds` rotations and return the best
/// (shortest) schedule found together with its retiming.
///
/// `rounds` is typically `|V| * Phi(G)`; rotation cycles through
/// configurations, so more rounds only cost time.
pub fn rotation_schedule(g: &Dfg, fu: &FuConfig, rounds: usize) -> RotationResult {
    let mut r = Retiming::zero(g.node_count());
    let sched0 = list_schedule(g, fu);
    let mut best = RotationResult {
        length: sched0.length(),
        schedule: sched0,
        retiming: r.clone(),
    };
    let mut current = g.clone();
    for _ in 0..rounds {
        let sched = list_schedule(&current, fu);
        // Rotate: push a delay through every first-row node.
        let first = sched.first_row();
        if first.len() == g.node_count() {
            // Whole body in one step: rotation is a no-op cycle.
            break;
        }
        for &v in &first {
            r.set(v, r.get(v) + 1);
        }
        debug_assert!(r.is_legal(g), "rotation must stay legal");
        current = r.apply(g);
        let sched = list_schedule(&current, fu);
        if sched.length() < best.length {
            best = RotationResult {
                length: sched.length(),
                schedule: sched,
                retiming: r.clone(),
            };
        }
    }
    best.retiming.normalize();
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::{algo, gen, DfgBuilder};
    use cred_retime::min_period_retiming;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn figure1_rotation_reaches_period_one() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 0);
        b.edge(bb, a, 2);
        let g = b.build().unwrap();
        let res = rotation_schedule(&g, &FuConfig::unlimited(), 8);
        assert_eq!(res.length, 1);
        // The winning retiming is Figure 1's r(A)=1, r(B)=0 (normalized).
        assert_eq!(res.retiming.get(a), 1);
        assert_eq!(res.retiming.get(bb), 0);
    }

    #[test]
    fn rotation_bounded_by_opt_and_initial_on_chains() {
        // Rotation is a heuristic: it always improves on (or matches) the
        // initial schedule and can never beat the OPT retiming period.
        for (k, d) in [(4usize, 4u32), (6, 2), (6, 3), (8, 4)] {
            let g = gen::chain_with_feedback(k, d);
            let opt = min_period_retiming(&g);
            let init = list_schedule(&g, &FuConfig::unlimited()).length();
            let rot = rotation_schedule(&g, &FuConfig::unlimited(), k * 8);
            assert!(rot.length >= opt.period, "chain ({k},{d})");
            assert!(rot.length <= init, "chain ({k},{d})");
        }
    }

    #[test]
    fn rotation_reaches_opt_when_delays_are_plentiful() {
        // With one delay per edge available, each rotation peels one row:
        // the heuristic reaches the optimal unit period.
        let g = gen::chain_with_feedback(4, 4);
        let opt = min_period_retiming(&g);
        assert_eq!(opt.period, 1);
        let rot = rotation_schedule(&g, &FuConfig::unlimited(), 32);
        assert_eq!(rot.length, 1);
    }

    #[test]
    fn rotation_never_worse_than_initial_schedule() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..15 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 10,
                    max_time: 3,
                    ..Default::default()
                },
            );
            for fu in [FuConfig::unlimited(), FuConfig::with_units(2, 1)] {
                let init = list_schedule(&g, &fu).length();
                let rot = rotation_schedule(&g, &fu, 40);
                assert!(rot.length <= init);
                // And the reported schedule verifies on the retimed graph.
                let gr = rot.retiming.apply(&g);
                rot.schedule.verify(&gr, &fu).unwrap();
            }
        }
    }

    #[test]
    fn rotation_retiming_is_legal_and_normalized() {
        let g = gen::chain_with_feedback(5, 5);
        let res = rotation_schedule(&g, &FuConfig::unlimited(), 30);
        assert!(res.retiming.is_legal(&g));
        assert!(res.retiming.is_normalized());
    }

    #[test]
    fn rotation_respects_resource_constraints() {
        // 5-node chain, plenty of delays, but only 1 ALU: the body can never
        // go below 5 steps regardless of retiming.
        let g = gen::chain_with_feedback(5, 5);
        let res = rotation_schedule(&g, &FuConfig::with_units(1, 1), 40);
        assert_eq!(res.length, 5);
    }

    #[test]
    fn rotation_length_lower_bounded_by_iteration_bound() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 8,
                    ..Default::default()
                },
            );
            let res = rotation_schedule(&g, &FuConfig::unlimited(), 50);
            if let Some(b) = algo::iteration_bound(&g) {
                assert!(cred_dfg::Ratio::integer(res.length as i64) >= b);
            }
        }
    }
}
