//! Functional-unit classes and machine resource configurations.

use cred_dfg::{OpClass, OpKind};

/// Functional-unit classes of the modeled VLIW datapath (a simplification
/// of the TMS320C6000 split into arithmetic/logic units and multipliers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Adders/ALUs — execute `Add`, `Sub`, `Input`, and the predicate
    /// `setup`/decrement instructions CRED inserts.
    Alu,
    /// Multipliers — execute `Mul` and `Mac`.
    Mul,
}

/// Number of FU kinds (array-indexed configs).
pub const FU_KINDS: usize = 2;

impl FuKind {
    /// Dense index for config arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuKind::Alu => 0,
            FuKind::Mul => 1,
        }
    }
}

/// The FU class executing an operation. The op→class partition lives on
/// [`OpKind::class`] in `cred-dfg` so `cred-exact`'s machine models and
/// this crate's FU configs can never disagree about it.
pub fn fu_kind(op: OpKind) -> FuKind {
    match op.class() {
        OpClass::Alu => FuKind::Alu,
        OpClass::Mac => FuKind::Mul,
    }
}

/// A machine configuration: how many units of each kind issue per cycle.
/// `None` means unlimited (resource-unconstrained scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    counts: [Option<usize>; FU_KINDS],
}

impl FuConfig {
    /// Unlimited units of every kind.
    pub fn unlimited() -> Self {
        FuConfig {
            counts: [None; FU_KINDS],
        }
    }

    /// A machine with the given unit counts.
    ///
    /// # Panics
    /// Panics if any count is zero (nothing could ever be scheduled).
    pub fn with_units(alu: usize, mul: usize) -> Self {
        assert!(alu >= 1 && mul >= 1, "FU counts must be at least 1");
        FuConfig {
            counts: [Some(alu), Some(mul)],
        }
    }

    /// Units available for `kind`, `None` = unlimited.
    pub fn units(&self, kind: FuKind) -> Option<usize> {
        self.counts[kind.index()]
    }

    /// True if no kind is constrained.
    pub fn is_unlimited(&self) -> bool {
        self.counts.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_to_fu_mapping() {
        assert_eq!(fu_kind(OpKind::Add(0)), FuKind::Alu);
        assert_eq!(fu_kind(OpKind::Sub(1)), FuKind::Alu);
        assert_eq!(fu_kind(OpKind::Input(2)), FuKind::Alu);
        assert_eq!(fu_kind(OpKind::Mul(0)), FuKind::Mul);
        assert_eq!(fu_kind(OpKind::Mac(0)), FuKind::Mul);
    }

    #[test]
    fn unlimited_config() {
        let c = FuConfig::unlimited();
        assert!(c.is_unlimited());
        assert_eq!(c.units(FuKind::Alu), None);
    }

    #[test]
    fn bounded_config() {
        let c = FuConfig::with_units(2, 1);
        assert!(!c.is_unlimited());
        assert_eq!(c.units(FuKind::Alu), Some(2));
        assert_eq!(c.units(FuKind::Mul), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_units_rejected() {
        let _ = FuConfig::with_units(0, 1);
    }
}
