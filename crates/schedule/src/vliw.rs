//! VLIW word packing: do CRED's `setup`/decrement instructions fit in the
//! free slots of the pipelined kernel?
//!
//! The paper argues (§3.2) that "the inserted instructions can be put into
//! a slot of the long instruction word wherever possible", so code-size
//! reduction usually does not lengthen the kernel schedule. This module
//! quantifies that: given a kernel schedule and a machine width, it counts
//! free ALU slots and computes the schedule length after inserting `k`
//! extra ALU operations (the per-register decrements are plain ALU ops with
//! no data dependence on the kernel).

use crate::list::StaticSchedule;
use crate::resources::{fu_kind, FuConfig, FuKind};
use cred_dfg::Dfg;

/// Occupancy summary of a packed kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VliwPacking {
    /// Number of long instruction words (= schedule length).
    pub words: u64,
    /// Unused ALU issue slots across the kernel (`None` width = infinite).
    pub free_alu_slots: Option<u64>,
}

/// Analyze ALU slot occupancy of `sched` on machine `fu`.
pub fn pack(g: &Dfg, sched: &StaticSchedule, fu: &FuConfig) -> VliwPacking {
    let words = sched.length();
    let Some(width) = fu.units(FuKind::Alu) else {
        return VliwPacking {
            words,
            free_alu_slots: None,
        };
    };
    let mut used = vec![0u64; words as usize];
    for v in g.node_ids() {
        if fu_kind(g.node(v).op) == FuKind::Alu {
            for s in sched.start(v)..sched.start(v) + g.node(v).time as u64 {
                used[s as usize] += 1;
            }
        }
    }
    let free = used.iter().map(|&u| width as u64 - u).sum();
    VliwPacking {
        words,
        free_alu_slots: Some(free),
    }
}

/// Kernel schedule length after inserting `extra` independent ALU
/// operations (CRED setup happens once outside the loop; the per-iteration
/// decrements are what could cost slots).
///
/// Free slots absorb the extras; any overflow appends full-width words.
pub fn length_with_extra_alu(g: &Dfg, sched: &StaticSchedule, fu: &FuConfig, extra: u64) -> u64 {
    let p = pack(g, sched, fu);
    match p.free_alu_slots {
        None => p.words, // infinite width: extras are free
        Some(free) => {
            if extra <= free {
                p.words
            } else {
                let width = fu.units(FuKind::Alu).expect("bounded") as u64;
                p.words + (extra - free).div_ceil(width)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::list_schedule;
    use cred_dfg::{DfgBuilder, OpKind};

    fn mul_heavy() -> Dfg {
        // 4 muls, 1 add: lots of ALU slack on a 2-ALU machine.
        let mut b = DfgBuilder::new();
        let m0 = b.node("m0", 1, OpKind::Mul(0));
        let m1 = b.node("m1", 1, OpKind::Mul(0));
        let m2 = b.node("m2", 1, OpKind::Mul(0));
        let m3 = b.node("m3", 1, OpKind::Mul(0));
        let a0 = b.node("a0", 1, OpKind::Add(0));
        b.edge(m0, m1, 0);
        b.edge(m2, m3, 0);
        b.edge(m1, a0, 0);
        b.edge(a0, m0, 2);
        b.build().unwrap()
    }

    #[test]
    fn counts_free_alu_slots() {
        let g = mul_heavy();
        let fu = FuConfig::with_units(2, 2);
        let s = list_schedule(&g, &fu);
        let p = pack(&g, &s, &fu);
        // One ALU op total; 2 ALU slots per word.
        assert_eq!(p.free_alu_slots, Some(p.words * 2 - 1));
    }

    #[test]
    fn extras_fit_in_free_slots() {
        let g = mul_heavy();
        let fu = FuConfig::with_units(2, 2);
        let s = list_schedule(&g, &fu);
        let base = s.length();
        // Up to free-slot-count extras cost nothing.
        let p = pack(&g, &s, &fu);
        let free = p.free_alu_slots.unwrap();
        assert_eq!(length_with_extra_alu(&g, &s, &fu, free), base);
        // One more overflows into a new word.
        assert_eq!(length_with_extra_alu(&g, &s, &fu, free + 1), base + 1);
        // A full extra word's worth: still one extra word.
        assert_eq!(length_with_extra_alu(&g, &s, &fu, free + 2), base + 1);
        assert_eq!(length_with_extra_alu(&g, &s, &fu, free + 3), base + 2);
    }

    #[test]
    fn unlimited_width_extras_are_free() {
        let g = mul_heavy();
        let fu = FuConfig::unlimited();
        let s = list_schedule(&g, &fu);
        assert_eq!(length_with_extra_alu(&g, &s, &fu, 1000), s.length());
    }

    #[test]
    fn saturated_alu_kernel_pays_for_extras() {
        // 4 chained adds on a 1-ALU machine: zero free slots.
        let mut b = DfgBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.unit(format!("a{i}"))).collect();
        for w in n.windows(2) {
            b.edge(w[0], w[1], 0);
        }
        b.edge(n[3], n[0], 4);
        let g = b.build().unwrap();
        let fu = FuConfig::with_units(1, 1);
        let s = list_schedule(&g, &fu);
        assert_eq!(s.length(), 4);
        let p = pack(&g, &s, &fu);
        assert_eq!(p.free_alu_slots, Some(0));
        assert_eq!(length_with_extra_alu(&g, &s, &fu, 3), 7);
    }

    #[test]
    fn multi_cycle_alu_ops_occupy_slots() {
        let mut b = DfgBuilder::new();
        let a = b.node("a", 3, OpKind::Add(0));
        b.edge(a, a, 1);
        let g = b.build().unwrap();
        let fu = FuConfig::with_units(1, 1);
        let s = list_schedule(&g, &fu);
        let p = pack(&g, &s, &fu);
        assert_eq!(p.words, 3);
        assert_eq!(p.free_alu_slots, Some(0));
    }
}
