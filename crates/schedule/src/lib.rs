//! # cred-schedule — static scheduling substrate
//!
//! Turns DFGs into static schedules (control-step assignments) under
//! functional-unit resource constraints, and implements the schedule-driven
//! retiming generator the paper keywords: **rotation scheduling**
//! (Chao–Sha).
//!
//! * [`resources`] — functional-unit classes and machine configurations;
//! * [`list`] — ASAP and resource-constrained list scheduling;
//! * [`rotation`] — rotation scheduling: repeatedly retime the first
//!   control step of the current schedule and reschedule, shortening the
//!   loop body under resource constraints (each rotation *is* a retiming,
//!   i.e. a software-pipelining step);
//! * [`modulo`] — iterative modulo scheduling (the Rau/TI-style software
//!   pipelining the paper's reference \[4\] targets) and the stage retiming
//!   that connects modulo schedules to CRED;
//! * [`vliw`] — VLIW word packing, used to check that the `setup` /
//!   decrement instructions CRED inserts fit into free slots of the long
//!   instruction words ("code size reduction does not hurt the performance
//!   of an optimized loop", paper §3.2);
//! * [`maxlive`] — steady-state data-register pressure of a cyclic
//!   kernel schedule (sequential retime+unfold kernels and exact modulo
//!   schedules), the fourth objective of the explore frontier.

pub mod list;
pub mod maxlive;
pub mod modulo;
pub mod resources;
pub mod rotation;
pub mod vliw;

pub use list::{asap_schedule, list_schedule, StaticSchedule};
pub use maxlive::{KernelSchedule, MaxliveReport};
pub use modulo::{modulo_schedule, ModuloSchedule};
pub use resources::{fu_kind, FuConfig, FuKind};
pub use rotation::{rotation_schedule, RotationResult};
