//! ASAP and resource-constrained list scheduling of one loop iteration.
//!
//! Only intra-iteration (zero-delay) dependencies constrain the schedule of
//! a single iteration; inter-iteration edges are honored by the loop
//! structure itself. The schedule length of the zero-retiming schedule
//! equals the cycle period `Phi(G)` when resources are unlimited.

use crate::resources::{fu_kind, FuConfig, FuKind, FU_KINDS};
use cred_dfg::{algo, Dfg, NodeId};

/// A static schedule: a start control step per node. Node `v` occupies
/// steps `start(v) .. start(v) + t(v)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticSchedule {
    starts: Vec<u64>,
    length: u64,
}

impl StaticSchedule {
    /// Start step of `v`.
    #[inline]
    pub fn start(&self, v: NodeId) -> u64 {
        self.starts[v.index()]
    }

    /// Total schedule length (control steps for one iteration).
    pub fn length(&self) -> u64 {
        self.length
    }

    /// Raw start times, indexed by node.
    pub fn starts(&self) -> &[u64] {
        &self.starts
    }

    /// Nodes that start in the first control step — the candidates rotation
    /// scheduling retimes.
    pub fn first_row(&self) -> Vec<NodeId> {
        (0..self.starts.len() as u32)
            .map(NodeId)
            .filter(|v| self.starts[v.index()] == 0)
            .collect()
    }

    /// Group nodes by start step (for display and tests).
    pub fn rows(&self) -> Vec<Vec<NodeId>> {
        let mut rows = vec![Vec::new(); self.length as usize];
        for (i, &s) in self.starts.iter().enumerate() {
            rows[s as usize].push(NodeId(i as u32));
        }
        rows
    }

    /// Verify the schedule against `g` and `fu`: every zero-delay edge's
    /// consumer starts after its producer finishes, and no control step
    /// oversubscribes a bounded FU kind (a node occupies its unit for
    /// `t(v)` consecutive steps).
    pub fn verify(&self, g: &Dfg, fu: &FuConfig) -> Result<(), String> {
        for e in g.edge_ids() {
            let ed = g.edge(e);
            if ed.delay == 0 {
                let fin = self.start(ed.src) + g.node(ed.src).time as u64;
                if self.start(ed.dst) < fin {
                    return Err(format!(
                        "zero-delay dependence violated: {} finishes at {fin}, {} starts at {}",
                        g.node(ed.src).name,
                        g.node(ed.dst).name,
                        self.start(ed.dst)
                    ));
                }
            }
        }
        if !fu.is_unlimited() {
            let len = self.length as usize;
            let mut usage = vec![[0usize; FU_KINDS]; len];
            for v in g.node_ids() {
                let kind = fu_kind(g.node(v).op);
                for s in self.start(v)..self.start(v) + g.node(v).time as u64 {
                    usage[s as usize][kind.index()] += 1;
                }
            }
            for (step, u) in usage.iter().enumerate() {
                for (kind, limit) in [
                    (FuKind::Alu, fu.units(FuKind::Alu)),
                    (FuKind::Mul, fu.units(FuKind::Mul)),
                ] {
                    if let Some(limit) = limit {
                        if u[kind.index()] > limit {
                            return Err(format!(
                                "step {step} uses {} {kind:?} units, limit {limit}",
                                u[kind.index()]
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// ASAP schedule without resource constraints. Its length equals the cycle
/// period `Phi(G)`.
pub fn asap_schedule(g: &Dfg) -> StaticSchedule {
    let order = algo::zero_delay_topo_order(g).expect("well-formed DFG");
    let mut starts = vec![0u64; g.node_count()];
    let mut length = 0;
    for &v in &order {
        let mut s = 0;
        for &e in g.in_edges(v) {
            let ed = g.edge(e);
            if ed.delay == 0 {
                s = s.max(starts[ed.src.index()] + g.node(ed.src).time as u64);
            }
        }
        starts[v.index()] = s;
        length = length.max(s + g.node(v).time as u64);
    }
    StaticSchedule { starts, length }
}

/// Resource-constrained list scheduling.
///
/// Priority: the *height* of a node (longest zero-delay path from the node
/// to any sink, inclusive) — critical-path-first. Units are non-pipelined:
/// a node occupies one unit of its kind for `t(v)` consecutive steps.
pub fn list_schedule(g: &Dfg, fu: &FuConfig) -> StaticSchedule {
    if fu.is_unlimited() {
        return asap_schedule(g);
    }
    let order = algo::zero_delay_topo_order(g).expect("well-formed DFG");
    // Heights for priority.
    let mut height = vec![0u64; g.node_count()];
    for &v in order.iter().rev() {
        let mut h = 0;
        for &e in g.out_edges(v) {
            let ed = g.edge(e);
            if ed.delay == 0 {
                h = h.max(height[ed.dst.index()]);
            }
        }
        height[v.index()] = h + g.node(v).time as u64;
    }
    let n = g.node_count();
    let mut remaining_preds = vec![0usize; n];
    for e in g.edge_ids() {
        let ed = g.edge(e);
        if ed.delay == 0 {
            remaining_preds[ed.dst.index()] += 1;
        }
    }
    // ready_at[v]: earliest step v may start given finished predecessors.
    let mut ready_at = vec![0u64; n];
    let mut ready: Vec<NodeId> = g
        .node_ids()
        .filter(|v| remaining_preds[v.index()] == 0)
        .collect();
    let mut starts = vec![u64::MAX; n];
    let mut scheduled = 0usize;
    let mut step: u64 = 0;
    // busy_until[kind] tracks per-unit busy times for bounded kinds.
    let mut units: [Vec<u64>; FU_KINDS] = [
        vec![0u64; fu.units(FuKind::Alu).unwrap_or(0)],
        vec![0u64; fu.units(FuKind::Mul).unwrap_or(0)],
    ];
    let mut length = 0u64;
    while scheduled < n {
        // Issue as many ready ops as resources allow at `step`,
        // critical-path-first.
        ready.sort_unstable_by_key(|v| std::cmp::Reverse(height[v.index()]));
        let mut next_ready: Vec<NodeId> = Vec::new();
        let mut newly_ready: Vec<NodeId> = Vec::new();
        for &v in &ready {
            if ready_at[v.index()] > step {
                next_ready.push(v);
                continue;
            }
            let kind = fu_kind(g.node(v).op);
            let t = g.node(v).time as u64;
            let slot = units[kind.index()].iter_mut().find(|busy| **busy <= step);
            match slot {
                Some(busy) => {
                    *busy = step + t;
                    starts[v.index()] = step;
                    length = length.max(step + t);
                    scheduled += 1;
                    for &e in g.out_edges(v) {
                        let ed = g.edge(e);
                        if ed.delay == 0 {
                            let d = &mut remaining_preds[ed.dst.index()];
                            *d -= 1;
                            ready_at[ed.dst.index()] = ready_at[ed.dst.index()].max(step + t);
                            if *d == 0 {
                                newly_ready.push(ed.dst);
                            }
                        }
                    }
                }
                None => next_ready.push(v),
            }
        }
        ready = next_ready;
        ready.extend(newly_ready);
        step += 1;
        debug_assert!(step <= g.total_time() * 2 + n as u64, "scheduler stuck");
    }
    StaticSchedule { starts, length }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::{gen, DfgBuilder, OpKind};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn asap_length_equals_cycle_period() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 12,
                    max_time: 4,
                    ..Default::default()
                },
            );
            let s = asap_schedule(&g);
            assert_eq!(Some(s.length()), algo::cycle_period(&g));
            s.verify(&g, &FuConfig::unlimited()).unwrap();
        }
    }

    #[test]
    fn figure2_static_schedule() {
        // Figure 1(a)/2(a): A then B, two control steps.
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 0);
        b.edge(bb, a, 2);
        let g = b.build().unwrap();
        let s = asap_schedule(&g);
        assert_eq!(s.length(), 2);
        assert_eq!(s.start(a), 0);
        assert_eq!(s.start(bb), 1);
        assert_eq!(s.first_row(), vec![a]);
    }

    #[test]
    fn retimed_figure2_single_step() {
        // Figure 1(b)/2(b): after retiming, A and B are independent.
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 1);
        b.edge(bb, a, 1);
        let g = b.build().unwrap();
        let s = asap_schedule(&g);
        assert_eq!(s.length(), 1);
        assert_eq!(s.rows(), vec![vec![a, bb]]);
    }

    #[test]
    fn resource_limit_serializes_independent_ops() {
        // 4 independent unit adds on 1 ALU take 4 steps; on 2 ALUs, 2 steps.
        let mut b = DfgBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.unit(format!("a{i}"))).collect();
        b.edge(n[0], n[0], 1); // keep graph cyclic-free but add a delay edge
        let g = b.build().unwrap();
        let s1 = list_schedule(&g, &FuConfig::with_units(1, 1));
        assert_eq!(s1.length(), 4);
        s1.verify(&g, &FuConfig::with_units(1, 1)).unwrap();
        let s2 = list_schedule(&g, &FuConfig::with_units(2, 1));
        assert_eq!(s2.length(), 2);
        s2.verify(&g, &FuConfig::with_units(2, 1)).unwrap();
    }

    #[test]
    fn mixed_fu_kinds_do_not_contend() {
        // 2 adds + 2 muls on a (1 ALU, 1 MUL) machine: 2 steps.
        let mut b = DfgBuilder::new();
        b.node("a0", 1, OpKind::Add(0));
        b.node("a1", 1, OpKind::Add(0));
        b.node("m0", 1, OpKind::Mul(0));
        let m1 = b.node("m1", 1, OpKind::Mul(0));
        b.edge(m1, m1, 1);
        let g = b.build().unwrap();
        let s = list_schedule(&g, &FuConfig::with_units(1, 1));
        assert_eq!(s.length(), 2);
    }

    #[test]
    fn non_unit_times_occupy_units() {
        // Two independent 3-cycle muls on one multiplier: length 6.
        let mut b = DfgBuilder::new();
        b.node("m0", 3, OpKind::Mul(0));
        let m1 = b.node("m1", 3, OpKind::Mul(0));
        b.edge(m1, m1, 1);
        let g = b.build().unwrap();
        let s = list_schedule(&g, &FuConfig::with_units(1, 1));
        assert_eq!(s.length(), 6);
        s.verify(&g, &FuConfig::with_units(1, 1)).unwrap();
    }

    #[test]
    fn dependences_respected_under_pressure() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 15,
                    max_time: 3,
                    forward_edge_prob: 0.35,
                    ..Default::default()
                },
            );
            for fu in [
                FuConfig::with_units(1, 1),
                FuConfig::with_units(2, 1),
                FuConfig::with_units(3, 2),
            ] {
                let s = list_schedule(&g, &fu);
                s.verify(&g, &fu).expect("schedule must verify");
                // Resource-constrained length is never shorter than ASAP.
                assert!(s.length() >= asap_schedule(&g).length());
            }
        }
    }

    #[test]
    fn more_units_never_hurt() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10 {
            let g = gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes: 12,
                    ..Default::default()
                },
            );
            let narrow = list_schedule(&g, &FuConfig::with_units(1, 1)).length();
            let wide = list_schedule(&g, &FuConfig::with_units(4, 4)).length();
            assert!(wide <= narrow);
        }
    }
}
