//! Scenario: an embedded DSP loop unfolded for throughput, where the trip
//! count is not divisible by the unfolding factor (paper §3.3 / Figure 5).
//!
//! ```text
//! cargo run --example unfold_remainder
//! ```
//!
//! Unfolding a loop of `n` iterations by `f` leaves `n mod f` whole copies
//! of the body outside the loop. CRED removes all of them with ONE
//! conditional register. This example sweeps trip counts and factors on
//! the paper's three-instruction loop and on the IIR benchmark, printing
//! the sizes side by side and verifying every variant on the VM.

use cred::codegen::cred::cred_unfolded;
use cred::codegen::pretty::render;
use cred::codegen::unfolded::unfolded_program;
use cred::codegen::DecMode;
use cred::dfg::{DfgBuilder, OpKind};
use cred::vm::check_against_reference;

fn main() {
    // Figure 4: A[i] = B[i-3]*3; B[i] = A[i]+7; C[i] = B[i]*2.
    let mut b = DfgBuilder::new();
    let a = b.node("A", 1, OpKind::Mul(3));
    let bb = b.node("B", 1, OpKind::Add(7));
    let c = b.node("C", 1, OpKind::Mul(2));
    b.edge(bb, a, 3);
    b.edge(a, bb, 0);
    b.edge(bb, c, 0);
    let g = b.build().unwrap();

    println!("--- Figure 5: f = 3, n = 11 ---\n");
    let plain = unfolded_program(&g, 3, 11);
    let cred = cred_unfolded(&g, 3, 11, DecMode::Bulk);
    check_against_reference(&g, &plain).unwrap();
    check_against_reference(&g, &cred).unwrap();
    println!("{}", render(&plain));
    println!("{}", render(&cred));

    println!("--- code-size sweep on the IIR benchmark (L = 8) ---\n");
    let iir = cred::kernels::iir_filter();
    println!(
        "{:>4} {:>3} {:>8} {:>6} {:>8}",
        "n", "f", "unfolded", "CRED", "saved"
    );
    for f in [2usize, 3, 4, 5] {
        for n in [100u64, 101, 102, 103] {
            let plain = unfolded_program(&iir, f, n);
            let cred = cred_unfolded(&iir, f, n, DecMode::Bulk);
            check_against_reference(&iir, &plain).unwrap();
            check_against_reference(&iir, &cred).unwrap();
            let saved = plain.code_size() as i64 - cred.code_size() as i64;
            println!(
                "{n:>4} {f:>3} {:>8} {:>6} {saved:>8}",
                plain.code_size(),
                cred.code_size(),
            );
        }
    }
    println!("\n(negative savings occur only when n mod f = 0: there is no");
    println!(" remainder to remove and CRED still pays its setup+decrement)");
}
