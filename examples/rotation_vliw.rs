//! Scenario: schedule-driven software pipelining on a width-limited VLIW
//! machine (rotation scheduling, paper keyword; §3.2's performance claim).
//!
//! ```text
//! cargo run --example rotation_vliw
//! ```
//!
//! On a machine with limited functional units, rotation scheduling
//! shortens the kernel by retiming the first control step and
//! rescheduling. The resulting retiming feeds CRED exactly like one from
//! OPT — and the decrement instructions CRED adds fit into free ALU slots
//! of the packed kernel, so the code-size reduction is performance-free.

use cred::codegen::cred::cred_pipelined;
use cred::schedule::vliw::{length_with_extra_alu, pack};
use cred::schedule::{list_schedule, rotation_schedule, FuConfig};
use cred::vm::check_against_reference;

fn main() {
    let machine = FuConfig::with_units(2, 2);
    println!("machine: 2 ALUs + 2 multipliers\n");
    println!(
        "{:<24} {:>8} {:>8} {:>6} {:>10} {:>12}",
        "benchmark", "initial", "rotated", "M_r", "CRED size", "kernel+decs"
    );
    for (name, g) in cred::kernels::all_benchmarks() {
        let init = list_schedule(&g, &machine).length();
        let rot = rotation_schedule(&g, &machine, 64);
        let r = &rot.retiming;
        // CRED the rotated loop and verify it still computes the filter.
        let prog = cred_pipelined(&g, r, 64);
        check_against_reference(&g, &prog).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Do the decrements cost schedule length?
        let gr = r.apply(&g);
        let sched = list_schedule(&gr, &machine);
        let with = length_with_extra_alu(&gr, &sched, &machine, r.register_count() as u64);
        let free = pack(&gr, &sched, &machine).free_alu_slots.unwrap_or(0);
        println!(
            "{name:<24} {init:>8} {:>8} {:>6} {:>10} {:>7} ({} free)",
            rot.length,
            r.max_value(),
            prog.code_size(),
            with,
            free,
        );
    }
    println!("\n'kernel+decs' equal to 'rotated' means the CRED decrements");
    println!("were absorbed by free ALU slots (no performance loss).");
}
