//! Quickstart: reduce the code size of a software-pipelined DSP loop.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's running example (Figure 3's five-instruction loop),
//! lets the framework pick a rate-optimal retiming, and prints the three
//! program forms with their sizes. Every program is executed by the
//! bundled VM and checked against the loop's mathematical recurrence
//! before anything is printed.

use cred::codegen::pretty::render;
use cred::core::{CodeSizeReducer, ReducerConfig};
use cred::dfg::{DfgBuilder, OpKind};

fn main() {
    // A[i] = E[i-4] + 9;  B[i] = A[i] * 5;  C[i] = A[i] + B[i-2];
    // D[i] = A[i] * C[i]; E[i] = D[i] + 30;
    let mut b = DfgBuilder::new();
    let a = b.node("A", 1, OpKind::Add(9));
    let bb = b.node("B", 1, OpKind::Mul(5));
    let c = b.node("C", 1, OpKind::Add(0));
    let d = b.node("D", 1, OpKind::Mul(0));
    let e = b.node("E", 1, OpKind::Add(30));
    b.edge(e, a, 4);
    b.edge(a, bb, 0);
    b.edge(a, c, 0);
    b.edge(bb, c, 2);
    b.edge(a, d, 0);
    b.edge(c, d, 0);
    b.edge(d, e, 0);
    let g = b.build().expect("well-formed loop");

    println!(
        "iteration bound: {:?}",
        cred::dfg::algo::iteration_bound(&g).map(|r| r.to_string())
    );
    println!(
        "cycle period before retiming: {:?}\n",
        cred::dfg::algo::cycle_period(&g)
    );

    let reduction = CodeSizeReducer::new(g)
        .with_config(ReducerConfig {
            trip_count: 10,
            ..Default::default()
        })
        .run()
        .expect("all generated programs verified against the recurrence");

    println!(
        "rate-optimal cycle period after retiming: {}\n",
        reduction.period
    );
    println!("--- software-pipelined (prologue + kernel + epilogue) ---");
    println!("{}", render(&reduction.pipelined));
    println!("--- CRED: same schedule, conditional registers ---");
    println!("{}", render(&reduction.cred));
    for (name, size) in reduction.sizes() {
        println!("{name:>12}: {size} instructions");
    }
    println!(
        "\ncode-size reduction: {:.1}%",
        reduction.reduction_percent()
    );
}
