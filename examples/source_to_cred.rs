//! Scenario: the adoptable workflow — start from loop *source code*
//! (the notation the paper's listings use), not from a hand-built graph.
//!
//! ```text
//! cargo run --example source_to_cred
//! ```
//!
//! Parses a kernel written in the `cred-lang` notation, lowers it to a
//! DFG, runs the whole CRED pipeline (retiming, unfolding, conditional-
//! register code generation, VM verification), prints the reduced loop,
//! and un-parses the graph back to source to show the round trip.

use cred::codegen::pretty::render;
use cred::core::{CodeSizeReducer, ReducerConfig};

const SRC: &str = r#"
// A 2-tap adaptive notch section, written directly as loop source.
loop {
    X[i]  = 17;                      // input tap (iteration-dependent)
    W1[i] = W1[i-1] + E[i-2];        // coefficient update (delayed error)
    W2[i] = W2[i-2] + E[i-3];
    P1[i] = W1[i] * X[i];
    P2[i] = W2[i] * X[i];
    Y[i]  = P1[i] + P2[i];
    E[i]  = X[i] - Y[i];             // error feeds the recurrences
}
"#;

fn main() {
    let g = cred_lang::parse(SRC).expect("kernel parses");
    println!(
        "parsed {} statements; iteration bound {}",
        g.node_count(),
        cred::dfg::algo::iteration_bound(&g).unwrap()
    );

    let red = CodeSizeReducer::new(g.clone())
        .with_config(ReducerConfig {
            trip_count: 25,
            unfold_factor: 2,
            ..Default::default()
        })
        .run()
        .expect("all program forms verified");

    println!("\nretiming chosen by the framework:");
    for v in g.node_ids() {
        print!("  {} = {}", g.node(v).name, red.retiming.get(v));
    }
    println!("\n");
    for (name, size) in red.sizes() {
        println!("{name:>20}: {size:>4} instructions");
    }
    println!("\n--- the CRED loop ---");
    println!("{}", render(&red.cred));
    println!("--- round trip: graph back to source ---");
    println!("{}", cred_lang::unparse(&g));
}
