//! Scenario: design-space exploration under embedded-memory constraints
//! (paper §4, closing discussion).
//!
//! ```text
//! cargo run --example design_space
//! ```
//!
//! A designer has a code-size budget (instruction memory) and a predicate-
//! register budget, and wants the fastest schedule that fits. This example
//! sweeps unfolding factors on the elliptic wave filter, prints the
//! four-axis Pareto frontier (code size, iteration period, conditional
//! registers, maxlive), and answers both budget queries.

use cred::codegen::DecMode;
use cred::explore::{best_under_code_budget, best_under_register_budget, ExploreRequest};
use cred::kernels::elliptic_filter;

fn main() {
    let g = elliptic_filter();
    let l = g.node_count();
    let n = 96u64;
    println!(
        "elliptic wave filter: L = {l}, iteration bound = {}\n",
        cred::dfg::algo::iteration_bound(&g).unwrap()
    );

    let resp = ExploreRequest::new(g.clone())
        .max_f(5)
        .trip_count(n)
        .run()
        .expect("unlimited sweep");
    println!(
        "{:>3} {:>5} {:>11} {:>10} {:>17} {:>6} {:>8}",
        "f", "M_r", "plain size", "CRED size", "iteration period", "P_r", "maxlive"
    );
    for p in &resp.points {
        let o = &p.objectives;
        println!(
            "{:>3} {:>5} {:>11} {:>10} {:>17} {:>6} {:>8}",
            p.f,
            p.m_r,
            p.plain_size,
            o.cred_size,
            format!(
                "{} = {:.2}",
                o.iteration_period,
                o.iteration_period.to_f64()
            ),
            o.cond_registers,
            o.maxlive
        );
    }

    println!("\nPareto frontier (size, period, cond registers, maxlive):");
    for p in &resp.frontier {
        let o = &p.objectives;
        println!(
            "  f = {}: {} instructions at period {}, {} cond registers, maxlive {}",
            p.f, o.cred_size, o.iteration_period, o.cond_registers, o.maxlive
        );
    }

    for budget in [l + 10, 2 * l + 10, 4 * l + 10] {
        match best_under_code_budget(&g, budget, 5, n, DecMode::Bulk) {
            Some(p) => println!(
                "\nbudget {budget:>4} instructions -> f = {}, CRED size {}, period {}",
                p.f, p.objectives.cred_size, p.objectives.iteration_period
            ),
            None => println!("\nbudget {budget:>4} instructions -> infeasible"),
        }
    }

    for regs in [1usize, 2, 4] {
        match best_under_register_budget(&g, regs, 4, n, DecMode::Bulk) {
            Some(p) => println!(
                "register budget {regs} -> f = {}, period {}, uses {} registers",
                p.f, p.objectives.iteration_period, p.objectives.cond_registers
            ),
            None => println!("register budget {regs} -> infeasible"),
        }
    }
}
