//! Scenario: combining software pipelining with unfolding — and why the
//! order matters (paper §3.4, Theorems 4.4–4.7, Figures 6–7).
//!
//! ```text
//! cargo run --example retime_unfold
//! ```
//!
//! For a rate-optimal schedule of a loop with a fractional iteration
//! bound, the loop must be unfolded *and* retimed. Retiming first and
//! then unfolding produces less code than unfolding first (Theorem 4.5),
//! and CRED removes the rest with no extra registers (Theorem 4.7). This
//! example walks the Figure 6/7 loop, then compares both orders on the
//! 4-stage lattice benchmark.

use cred::codegen::cred::cred_retime_unfold;
use cred::codegen::pretty::render;
use cred::codegen::unfolded::{retime_unfold_program, unfold_retime_program};
use cred::codegen::DecMode;
use cred::dfg::{DfgBuilder, OpKind};
use cred::retime::{min_period_retiming, Retiming};
use cred::unfold::orders::project_retiming;
use cred::unfold::unfold;
use cred::vm::check_against_reference;

fn main() {
    // Figure 6's loop (with the delay on A -> B that makes r(B) = 1 legal;
    // see DESIGN.md): A[i] = B[i-3]*3; B[i] = A[i-1]+7; C[i] = B[i]*2.
    let mut b = DfgBuilder::new();
    let a = b.node("A", 1, OpKind::Mul(3));
    let bb = b.node("B", 1, OpKind::Add(7));
    let c = b.node("C", 1, OpKind::Mul(2));
    b.edge(bb, a, 3);
    b.edge(a, bb, 1);
    b.edge(bb, c, 0);
    let g = b.build().unwrap();
    let mut r = Retiming::zero(3);
    r.set(bb, 1);

    println!("--- Figure 6(b)/7(b): retime (r(B)=1) then unfold (f=3), n = 9 ---\n");
    let plain = retime_unfold_program(&g, &r, 3, 9);
    let cred = cred_retime_unfold(&g, &r, 3, 9, DecMode::PerCopy);
    check_against_reference(&g, &plain).unwrap();
    check_against_reference(&g, &cred).unwrap();
    println!("{}", render(&plain));
    println!("{}", render(&cred));

    println!("--- order comparison on the 4-stage lattice (L = 26, n = 96) ---\n");
    let lat = cred::kernels::lattice_filter();
    println!(
        "{:>3} {:>14} {:>14} {:>9} {:>10}",
        "f", "unfold-retime", "retime-unfold", "CRED", "registers"
    );
    for f in [2usize, 3, 4] {
        let u = unfold(&lat, f);
        let r_f = min_period_retiming(&u.graph).retiming;
        let ur = unfold_retime_program(&lat, &u, &r_f, 96);
        let projected = project_retiming(&u, &r_f);
        let ru = retime_unfold_program(&lat, &projected, f, 96);
        let cr = cred_retime_unfold(&lat, &projected, f, 96, DecMode::PerCopy);
        for p in [&ur, &ru, &cr] {
            check_against_reference(&lat, p).unwrap();
        }
        println!(
            "{f:>3} {:>14} {:>14} {:>9} {:>10}",
            ur.code_size(),
            ru.code_size(),
            cr.code_size(),
            projected.register_count()
        );
    }
    println!("\nTheorem 4.5: the retime-first column never exceeds the");
    println!("unfold-first column; Theorem 4.7: CRED's register count");
    println!("equals that of the un-unfolded retimed loop.");
}
