//! # cred — optimal code size reduction for software-pipelined and unfolded loops
//!
//! Façade crate re-exporting the whole workspace. See the individual crates
//! for the subsystems:
//!
//! * [`dfg`] — data-flow-graph substrate (graphs, iteration bounds, W/D),
//! * [`retime`] — retiming engine (OPT, FEAS, fixed-period, span/register
//!   minimization),
//! * [`unfold`] — unfolding and retime/unfold ordering pipelines,
//! * [`schedule`] — static, rotation, and VLIW scheduling,
//! * [`codegen`] — loop IR, software-pipelined/unfolded code generation and
//!   the CRED conditional-register transformation,
//! * [`vm`] — executable semantics and equivalence checking,
//! * [`kernels`] — the paper's DSP benchmark suite,
//! * [`explore`] — code-size/performance design-space exploration,
//! * [`core`] — the high-level [`core::CodeSizeReducer`] API and the
//!   paper's theorems as checked propositions.

pub use cred_codegen as codegen;
pub use cred_core as core;
pub use cred_dfg as dfg;
pub use cred_explore as explore;
pub use cred_kernels as kernels;
pub use cred_retime as retime;
pub use cred_schedule as schedule;
pub use cred_unfold as unfold;
pub use cred_vm as vm;
